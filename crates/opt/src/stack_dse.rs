//! Dead-stack-store elimination and frame shrinking, justified by the
//! interprocedural stack-slot analysis (`spike_core::StackAnalysis`).
//!
//! A store to a frame slot no valid path reads — before the slot is
//! overwritten, popped, or the routine returns with nothing above the
//! entry SP referring to it — is deleted outright, the memory analogue
//! of Figure 1(a) register dead-store elimination. When deletions (or
//! the original layout) leave the deep end of a frame unused, the frame
//! is shrunk: the prologue/epilogue SP adjustments are rewritten to the
//! smaller size and every surviving access keeps its *absolute* slot
//! address (`entry_sp + entry_off = (entry_sp - F') + (entry_off + F')`
//! for any F'), so the transformation moves no data.
//!
//! The pass is deliberately conservative — it touches a routine only
//! when the slot model is fully trusted there:
//!
//! * the frame must not have escaped and the routine must be
//!   SP-balanced (otherwise slot identities are unreliable);
//! * every SP-relative access must be in-frame and every load's slot
//!   MUST-defined — any error-class stack finding disqualifies the
//!   routine, so the red-zone spill idiom (accesses below an unadjusted
//!   SP, Figure 1(c)'s shape) is left to the spill pass;
//! * frames shrink only in the canonical single-size shape: every SP
//!   adjustment in the routine is exactly `lda sp, ∓F(sp)` and every
//!   access executes at displacement `-F`.

use spike_core::{AccessKind, Analysis};
use spike_isa::{Instruction, Reg};
use spike_program::Program;

/// The edits the pass wants: dead-store deletions, SP-adjust and access
/// rewrites for frame shrinks, and the shrink byte count for the report.
#[derive(Default)]
pub(crate) struct StackDseEdits {
    pub deletes: Vec<u32>,
    pub replaces: Vec<(u32, Instruction)>,
    pub stores_deleted: usize,
    pub frame_bytes_shrunk: usize,
}

pub(crate) fn find(program: &Program, analysis: &Analysis) -> StackDseEdits {
    let mut edits = StackDseEdits::default();
    for (rid, routine) in program.iter() {
        let rs = analysis.stack.routine(rid);
        if rs.frame.escaped || rs.summary.unbalanced {
            continue;
        }
        let accesses = analysis.stack.accesses(program, &analysis.cfg, rid);
        // Any error-class finding means the model and the machine may
        // disagree about this frame; leave the routine alone.
        if accesses.iter().any(|a| !a.in_frame || (a.kind == AccessKind::Load && !a.defined_before))
        {
            continue;
        }

        let dead: Vec<u32> = accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Store && !a.live_after)
            .map(|a| a.addr)
            .collect();
        edits.stores_deleted += dead.len();
        edits.deletes.extend_from_slice(&dead);

        // Frame shrink: compute the smallest 16-aligned size covering
        // every surviving access, and rewrite only if the routine has
        // the canonical single-size adjust shape.
        let f = rs.frame.frame_size;
        if f == 0 {
            continue;
        }
        let survivors: Vec<_> = accesses.iter().filter(|a| !dead.contains(&a.addr)).collect();
        if survivors.iter().any(|a| a.sp_disp != -f) {
            continue;
        }
        let need = survivors.iter().map(|a| -a.entry_off).max().unwrap_or(0);
        let f_new = (need + 15) / 16 * 16;
        if f_new >= f {
            continue;
        }
        // Every SP adjustment (reachable or not) must be exactly ±F.
        let adjusts: Vec<(u32, i64)> = routine
            .insns()
            .iter()
            .enumerate()
            .filter_map(|(i, insn)| match *insn {
                Instruction::Lda { rd: Reg::SP, base: Reg::SP, disp } => {
                    Some((routine.addr() + i as u32, disp as i64))
                }
                _ => None,
            })
            .collect();
        if adjusts.iter().any(|&(_, d)| d != -f && d != f) {
            continue;
        }
        for &(addr, d) in &adjusts {
            if f_new == 0 {
                edits.deletes.push(addr);
            } else {
                let disp = if d < 0 { -f_new } else { f_new } as i16;
                edits.replaces.push((addr, Instruction::Lda { rd: Reg::SP, base: Reg::SP, disp }));
            }
        }
        for a in &survivors {
            let disp = (a.entry_off + f_new) as i16;
            let insn = routine.insn_at(a.addr).expect("access address in routine");
            let rewritten = match *insn {
                Instruction::Load { width, rd, base, .. } => {
                    Instruction::Load { width, rd, base, disp }
                }
                Instruction::Store { width, rs, base, .. } => {
                    Instruction::Store { width, rs, base, disp }
                }
                _ => unreachable!("stack accesses are loads and stores"),
            };
            edits.replaces.push((a.addr, rewritten));
        }
        edits.frame_bytes_shrunk += (f - f_new) as usize;
    }
    edits
}
