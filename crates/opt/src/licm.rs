//! Loop-invariant code motion into synthesized preheaders, guarded by
//! the interprocedural summaries.
//!
//! For every reducible natural loop (detected over the execution-graph
//! dominator tree, so dispatch loops whose iterations call out still
//! count), pure instructions whose operands nothing in the loop can
//! change are moved to a *preheader*: a run of instructions inserted
//! immediately before the header, entered by every edge into the loop
//! and skipped by every back edge (the back-edge branches are re-pointed
//! past the insertion with [`spike_program::Rewriter::bypass`]).
//!
//! What makes the post-link version interesting is, as everywhere in
//! Spike, *which* facts justify the motion:
//!
//! * loads stay hoistable in loops that call out, because the
//!   interprocedural MOD summaries (register `call-defined`/`call-killed`
//!   sets, stack `mods_above`) bound what every callee can write;
//! * the register-liveness and MUST-defined guards are exactly strong
//!   enough that the shadow oracles cannot tell the difference: a hoisted
//!   instruction never clobbers a live register, never reads a register
//!   the routine has not provably defined on every path to the header,
//!   and an SP-relative load only moves when its slot is MUST-defined at
//!   the header (`spike_core`'s forward slot dataflow).
//!
//! Profitability is weighted by loop depth (static mode) or by measured
//! execution counts when an [`spike_profile::Profile`] of this exact
//! image is supplied: an instruction is then hoisted only when it
//! executed more often than its loop was entered.

use std::collections::{BTreeMap, BTreeSet};

use spike_cfg::{BlockId, DomTree, LoopForest, RoutineCfg, TermKind};
use spike_core::{AccessKind, Analysis};
use spike_isa::{Instruction, Reg, RegSet};
use spike_profile::Profile;
use spike_program::Program;

use crate::liveness::routine_liveness;

/// The hoists of one loop: instructions to move (delete at their old
/// address, insert before the header) and the back-edge branches that
/// must skip the insertion.
pub(crate) struct LoopHoist {
    /// First address of the header block — the insertion point.
    pub header_addr: u32,
    /// `(original address, instruction)` in address order.
    pub insns: Vec<(u32, Instruction)>,
    /// Back-edge branch addresses to re-point past the insertion.
    pub bypasses: Vec<u32>,
}

/// Everything the LICM pass wants to do.
#[derive(Default)]
pub(crate) struct Hoists {
    pub loops: Vec<LoopHoist>,
    /// Memory loads hoisted.
    pub loads: usize,
    /// Pure register computations hoisted.
    pub ops: usize,
}

/// The taken target of a branch instruction at `addr`.
fn branch_target(addr: u32, disp: i32) -> u32 {
    (addr as i64 + 1 + disp as i64) as u32
}

/// The single register a hoist candidate writes, or `None` if the
/// instruction is not a hoistable kind (stores, branches, calls, `halt`,
/// `put_int` never move).
fn hoistable_dest(insn: &Instruction) -> Option<Reg> {
    match *insn {
        Instruction::Operate { rc, .. } | Instruction::OperateImm { rc, .. } => Some(rc),
        Instruction::Lda { rd, .. } | Instruction::Ldah { rd, .. } => Some(rd),
        Instruction::Load { rd, .. } => Some(rd),
        Instruction::FpOperate { fc, .. } => Some(fc),
        _ => None,
    }
}

/// Forward MUST-defined register sets at each block's entry: registers
/// written on *every* path from the routine's entries, starting from the
/// set the shadow oracle treats as defined at program start (`ra`, `sp`,
/// and the zero registers). Callee effects are applied through the
/// call-summary `defined` (must-write) sets, so definedness flows
/// through calls interprocedurally. An under-approximation: registers
/// the caller defined before entry are not counted.
fn must_defined_in(
    program: &Program,
    analysis: &Analysis,
    rid: spike_program::RoutineId,
    cfg: &RoutineCfg,
) -> Vec<RegSet> {
    let routine = program.routine(rid);
    let n = cfg.blocks().len();
    let entry_defined = RegSet::of(&[Reg::RA, Reg::SP, Reg::ZERO, Reg::FZERO]);
    let mut defined_in = vec![RegSet::ALL; n];
    for &e in cfg.entries() {
        defined_in[e.index()] = entry_defined;
    }

    // Execution-graph successors: block arcs plus call→return.
    let mut succs: Vec<Vec<BlockId>> = cfg.blocks().iter().map(|b| b.succs().to_vec()).collect();
    for (bi, block) in cfg.blocks().iter().enumerate() {
        if let TermKind::Call { return_to: Some(rt), .. } = block.term() {
            succs[bi].push(*rt);
        }
    }

    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..n {
            let b = BlockId::from_index(bi);
            let block = cfg.block(b);
            let mut out = defined_in[bi];
            for addr in block.start()..block.end() {
                out |= routine.insn_at(addr).expect("address in routine").defs();
            }
            if block.is_call_block() {
                let cs = analysis
                    .summary
                    .call_site(&analysis.cfg, rid, b)
                    .unwrap_or_else(|| analysis.summary.unknown_call_summary());
                out |= cs.defined;
            }
            for &s in &succs[bi] {
                let met = defined_in[s.index()] & out;
                if met != defined_in[s.index()] {
                    defined_in[s.index()] = met;
                    changed = true;
                }
            }
        }
    }
    defined_in
}

/// What one loop body can touch, accumulated over every block.
struct BodyEffects {
    /// Registers any body instruction or callee may write.
    defs: RegSet,
    /// Registers written by more than one body instruction.
    multi_defs: RegSet,
    /// Registers any callee in the body may write.
    call_defs: RegSet,
    /// The body contains a memory store instruction.
    stores: bool,
    /// The body contains a call block.
    calls: bool,
    /// Every callee in the body provably leaves the caller's stack alone
    /// (no `mods_above`, not opaque, target known).
    callees_spare_stack: bool,
    /// Every body block has a tracked SP displacement, so the stack
    /// access list covers the whole body.
    sp_tracked: bool,
    /// Frame entry offsets written by body stores.
    stored_offs: BTreeSet<i64>,
}

fn body_effects(
    program: &Program,
    analysis: &Analysis,
    rid: spike_program::RoutineId,
    cfg: &RoutineCfg,
    body: impl Iterator<Item = BlockId>,
    store_offs: &BTreeMap<u32, i64>,
) -> BodyEffects {
    let routine = program.routine(rid);
    let rs = analysis.stack.routine(rid);
    let mut e = BodyEffects {
        defs: RegSet::EMPTY,
        multi_defs: RegSet::EMPTY,
        call_defs: RegSet::EMPTY,
        stores: false,
        calls: false,
        callees_spare_stack: true,
        sp_tracked: !rs.frame.escaped && !rs.summary.unbalanced,
        stored_offs: BTreeSet::new(),
    };
    let mut seen = RegSet::EMPTY;
    for b in body {
        let block = cfg.block(b);
        if rs.frame.escaped || rs.sp_disp_in.get(b.index()).copied().flatten().is_none() {
            e.sp_tracked = false;
        }
        for addr in block.start()..block.end() {
            let insn = routine.insn_at(addr).expect("address in routine");
            if matches!(insn, Instruction::Store { .. }) {
                e.stores = true;
                if let Some(&off) = store_offs.get(&addr) {
                    e.stored_offs.insert(off);
                }
            }
            let defs = insn.defs();
            e.multi_defs |= defs & seen;
            seen |= defs;
            e.defs |= defs;
        }
        if block.is_call_block() {
            e.calls = true;
            let cs = analysis
                .summary
                .call_site(&analysis.cfg, rid, b)
                .unwrap_or_else(|| analysis.summary.unknown_call_summary());
            e.defs |= cs.defined | cs.killed;
            e.call_defs |= cs.defined | cs.killed;
            match block.term() {
                TermKind::Call { target: spike_cfg::CallTarget::Direct(callee, _), .. } => {
                    let cs = &analysis.stack.routine(*callee).summary;
                    if cs.opaque || !cs.mods_above.is_empty() {
                        e.callees_spare_stack = false;
                    }
                }
                TermKind::Call {
                    target: spike_cfg::CallTarget::IndirectKnown(targets), ..
                } => {
                    for &(callee, _) in targets {
                        let cs = &analysis.stack.routine(callee).summary;
                        if cs.opaque || !cs.mods_above.is_empty() {
                            e.callees_spare_stack = false;
                        }
                    }
                }
                _ => e.callees_spare_stack = false,
            }
        }
    }
    e
}

/// Finds every legal, profitable hoist in `program`. `profile`, when
/// present, must already be verified against this exact image — its
/// counts replace the static "hoist only what runs every iteration"
/// rule with measured execution counts.
pub(crate) fn find_hoists(
    program: &Program,
    analysis: &Analysis,
    profile: Option<&Profile>,
) -> Hoists {
    let mut out = Hoists::default();

    for (rid, routine) in program.iter() {
        let cfg = analysis.cfg.routine_cfg(rid);
        let dom = DomTree::dominators_linked(cfg);
        let forest = LoopForest::build(cfg, &dom);
        if forest.loops().is_empty() {
            continue;
        }
        let live = routine_liveness(program, analysis, rid, &|_| false);
        let must_regs = must_defined_in(program, analysis, rid, cfg);
        let rs = analysis.stack.routine(rid);
        // Per-address stack facts: entry offset of every store, and
        // (offset, MUST-defined-at-header usable) for every load.
        let accesses = analysis.stack.accesses(program, &analysis.cfg, rid);
        let store_offs: BTreeMap<u32, i64> = accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Store)
            .map(|a| (a.addr, a.entry_off))
            .collect();
        // Per in-frame load: its slot's entry offset and the SP
        // displacement the access runs at.
        let load_offs: BTreeMap<u32, (i64, i64)> = accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Load && a.in_frame)
            .map(|a| (a.addr, (a.entry_off, a.sp_disp)))
            .collect();

        let mut claimed: BTreeSet<u32> = BTreeSet::new();
        // Innermost loops first, so a nested invariant lands in the
        // innermost preheader that wants it.
        let mut order: Vec<usize> = (0..forest.loops().len()).collect();
        order.sort_by_key(|&i| forest.loops()[i].body.count());

        for li in order {
            let l = &forest.loops()[li];
            if l.irreducible || cfg.entries().contains(&l.header) {
                continue;
            }
            let header = l.header;
            let haddr = cfg.block(header).start();

            // Every back edge must be an explicit branch whose taken
            // target is the header — those can be re-pointed past the
            // preheader. A fall-through back edge cannot skip it.
            let mut bypasses: Vec<u32> = Vec::new();
            let mut back_edges_ok = true;
            for &be in &l.back_edges {
                let ta = cfg.block(be).term_addr();
                match routine.insn_at(ta) {
                    Some(&Instruction::Br { disp }) if branch_target(ta, disp) == haddr => {
                        bypasses.push(ta);
                    }
                    Some(&Instruction::CondBranch { disp, .. })
                        if branch_target(ta, disp) == haddr && ta + 1 != haddr =>
                    {
                        bypasses.push(ta);
                    }
                    _ => back_edges_ok = false,
                }
            }
            if !back_edges_ok {
                continue;
            }

            let effects = body_effects(program, analysis, rid, cfg, l.body.iter(), &store_offs);
            let header_live = live.live_in(header);
            let header_must = must_regs[header.index()];
            let header_slots = &rs.must_defined_in[header.index()];

            // Loop-entry count under a profile: times the header ran
            // minus times a back edge re-entered it.
            let entries = profile.map(|p| {
                let back: u64 = bypasses.iter().map(|&ta| p.edge(ta, haddr)).sum();
                p.count_at(haddr).saturating_sub(back)
            });

            let mut insns: Vec<(u32, Instruction)> = Vec::new();
            for b in l.body.iter() {
                let block = cfg.block(b);
                for addr in block.start()..block.end() {
                    if claimed.contains(&addr) {
                        continue;
                    }
                    // Control terminators are rejected here: only pure
                    // register-writing kinds have a hoistable dest.
                    let insn = routine.insn_at(addr).expect("address in routine");
                    let Some(dest) = hoistable_dest(insn) else { continue };
                    if program.relocations().contains_key(&addr) {
                        continue;
                    }
                    // The destination: not a register the machine
                    // depends on, written nowhere else in the loop, and
                    // dead at the header (so the early write clobbers
                    // nothing an entry path still needs).
                    if dest == Reg::SP
                        || dest == Reg::RA
                        || dest.is_zero()
                        || header_live.contains(dest)
                        || effects.multi_defs.contains(dest)
                        || effects.call_defs.contains(dest)
                    {
                        continue;
                    }
                    // Operands: nothing in the loop (instruction or
                    // callee) may write them, and every one is
                    // MUST-defined at the header so the preheader read
                    // is a read the shadow oracle already accepts.
                    //
                    // SP is exempt for frame loads taking the SP-facts
                    // path below: framed callees do write SP (it lands in
                    // their call-killed set), but the stack analysis has
                    // proved a fixed SP displacement for every body block,
                    // so SP's *value* at the load is loop-invariant even
                    // though the register is written and restored inside.
                    let uses = insn.uses();
                    let sp_facts = matches!(insn, Instruction::Load { base: Reg::SP, .. })
                        && effects.sp_tracked
                        && effects.callees_spare_stack;
                    let checked = if sp_facts { uses - RegSet::singleton(Reg::SP) } else { uses };
                    if !(checked & effects.defs).is_empty() || !(checked - header_must).is_empty() {
                        continue;
                    }
                    // Loads additionally need the loaded memory
                    // invariant across the loop.
                    if matches!(insn, Instruction::Load { .. }) {
                        if sp_facts {
                            let Some(&(off, at_disp)) = load_offs.get(&addr) else { continue };
                            let Some(slot) = rs.frame.slot_at(off) else { continue };
                            // The hoisted copy runs at the header's SP
                            // displacement; it reads the same slot only if
                            // the load already sat at that displacement.
                            if rs.sp_disp_in[header.index()] != Some(at_disp)
                                || effects.stored_offs.contains(&off)
                                || !header_slots.contains(slot)
                            {
                                continue;
                            }
                        } else if effects.stores || effects.calls {
                            continue;
                        }
                    }
                    // Profitability: measured counts when the profile
                    // actually observed this loop running — an
                    // instruction pays for its preheader copy exactly
                    // when it executed more often than the loop was
                    // entered. Loops the profiling run never reached
                    // (and unprofiled builds) fall back to the static
                    // rule: hoist only what runs on every iteration (it
                    // dominates the back edges), so the preheader copy
                    // can never run more often than the original did.
                    let profitable = match (profile, entries) {
                        (Some(p), Some(entries)) if p.count_at(haddr) > 0 => {
                            p.count_at(addr) > entries
                        }
                        _ => l.back_edges.iter().all(|&be| dom.dominates(b, be)),
                    };
                    if !profitable {
                        continue;
                    }
                    insns.push((addr, *insn));
                }
            }
            if insns.is_empty() {
                continue;
            }
            insns.sort_by_key(|&(addr, _)| addr);
            for &(addr, insn) in &insns {
                claimed.insert(addr);
                if matches!(insn, Instruction::Load { .. }) {
                    out.loads += 1;
                } else {
                    out.ops += 1;
                }
            }
            out.loops.push(LoopHoist { header_addr: haddr, insns, bypasses });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_core::analyze;
    use spike_isa::{AluOp, BranchCond};
    use spike_program::ProgramBuilder;

    fn hoists(p: &Program) -> Hoists {
        find_hoists(p, &analyze(p), None)
    }

    /// store t0 → slot; loop { load t1 ← slot; use; dec; branch } — the
    /// classic invariant-load shape the synthesizer plants.
    fn invariant_load_loop() -> Program {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::SP, Reg::SP, -16)
            .lda(Reg::T0, Reg::ZERO, 42)
            .store(Reg::T0, Reg::SP, 8)
            .lda(Reg::A0, Reg::ZERO, 5)
            .label("top")
            .load(Reg::T1, Reg::SP, 8)
            .op(AluOp::Add, Reg::T1, Reg::A0, Reg::V0)
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .put_int()
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        b.build().unwrap()
    }

    #[test]
    fn invariant_stack_load_is_hoisted() {
        let p = invariant_load_loop();
        let h = hoists(&p);
        assert_eq!(h.loads, 1, "the slot load is invariant");
        assert_eq!(h.loops.len(), 1);
        let lh = &h.loops[0];
        assert_eq!(lh.bypasses.len(), 1);
        assert!(matches!(lh.insns[0].1, Instruction::Load { rd: Reg::T1, .. }));
    }

    #[test]
    fn store_in_loop_blocks_the_load() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::SP, Reg::SP, -16)
            .lda(Reg::T0, Reg::ZERO, 1)
            .store(Reg::T0, Reg::SP, 8)
            .lda(Reg::A0, Reg::ZERO, 5)
            .label("top")
            .load(Reg::T1, Reg::SP, 8)
            .store(Reg::T1, Reg::SP, 8) // the slot is written each trip
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let p = b.build().unwrap();
        assert_eq!(hoists(&p).loads, 0);
    }

    #[test]
    fn operand_defined_in_loop_is_not_invariant() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::A0, Reg::ZERO, 5)
            .label("top")
            .op_imm(AluOp::Add, Reg::A0, 3, Reg::T1) // uses the counter
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .halt();
        let p = b.build().unwrap();
        assert_eq!(hoists(&p).ops, 0);
    }

    #[test]
    fn pure_op_on_preloop_values_is_hoisted() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 7)
            .lda(Reg::A0, Reg::ZERO, 5)
            .label("top")
            .op_imm(AluOp::Add, Reg::T0, 3, Reg::T1) // t0 never changes
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .halt();
        let p = b.build().unwrap();
        let h = hoists(&p);
        assert_eq!(h.ops, 1);
    }

    #[test]
    fn call_in_loop_blocks_only_what_the_callee_touches() {
        // The callee defines v0 (call-defined), so computations reading
        // v0 stay; ones reading an untouched register hoist.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::S0, Reg::ZERO, 9)
            .lda(Reg::A0, Reg::ZERO, 5)
            .label("top")
            .call("f")
            .op_imm(AluOp::Add, Reg::S0, 1, Reg::T2) // s0: callee leaves it
            .op_imm(AluOp::Add, Reg::V0, 1, Reg::T3) // v0: callee writes it
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .put_int()
            .halt();
        b.routine("f").lda(Reg::V0, Reg::ZERO, 1).ret();
        let p = b.build().unwrap();
        let h = hoists(&p);
        assert_eq!(h.ops, 1, "only the s0 computation is invariant");
        assert!(matches!(h.loops[0].insns[0].1, Instruction::OperateImm { rc: Reg::T2, .. }));
    }

    #[test]
    fn guarded_instruction_is_not_hoisted_statically() {
        // The invariant computation sits on one side of a branch inside
        // the loop: it does not dominate the back edge, so without a
        // profile the static rule refuses (it may run on no iteration).
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 7)
            .lda(Reg::A0, Reg::ZERO, 5)
            .label("top")
            .cond(BranchCond::Eq, Reg::A0, "skip")
            .op_imm(AluOp::Add, Reg::T0, 3, Reg::T1)
            .label("skip")
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .halt();
        let p = b.build().unwrap();
        assert_eq!(hoists(&p).ops, 0);
    }

    #[test]
    fn profile_counts_overrule_the_static_guard() {
        // Same guarded shape, but a measured profile shows the guarded
        // instruction runs every trip — the counts unlock the hoist.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 7)
            .lda(Reg::A0, Reg::ZERO, 5)
            .label("top")
            .cond(BranchCond::Ne, Reg::ZERO, "skip") // never taken
            .op_imm(AluOp::Add, Reg::T0, 3, Reg::T1)
            .label("skip")
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .halt();
        let p = b.build().unwrap();
        let (_, exec) = spike_sim::run_profiled(&p, 100_000);
        let prof = Profile::collect(&p, &exec);
        assert_eq!(find_hoists(&p, &analyze(&p), None).ops, 0);
        assert_eq!(find_hoists(&p, &analyze(&p), Some(&prof)).ops, 1);
    }

    #[test]
    fn frame_load_hoists_out_of_a_call_bearing_loop() {
        // The dispatch shape: a loop that calls a framed, stack-balanced
        // callee each trip and reloads an invariant frame slot. The
        // callee writes SP (it is call-killed), but the proved SP
        // displacements make the slot's address loop-invariant — the
        // interprocedural MOD summary (no mods above the callee's frame)
        // is what licenses the motion.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::SP, Reg::SP, -32)
            .store(Reg::RA, Reg::SP, 24)
            .lda(Reg::T0, Reg::ZERO, 42)
            .store(Reg::T0, Reg::SP, 8)
            .lda(Reg::S0, Reg::ZERO, 5)
            .label("top")
            .load(Reg::S1, Reg::SP, 8) // invariant: callee spares our frame
            .call("f")
            .op_imm(AluOp::Sub, Reg::S0, 1, Reg::S0)
            .cond(BranchCond::Ne, Reg::S0, "top")
            .load(Reg::RA, Reg::SP, 24)
            .lda(Reg::SP, Reg::SP, 32)
            .halt();
        b.routine("f")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::S1, Reg::SP, 0)
            .lda(Reg::S1, Reg::ZERO, 9)
            .copy(Reg::S1, Reg::V0)
            .load(Reg::S1, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        let p = b.build().unwrap();
        let h = hoists(&p);
        assert_eq!(h.loads, 1, "the frame load must hoist across the call");
        assert!(matches!(h.loops[0].insns[0].1, Instruction::Load { rd: Reg::S1, .. }));
    }

    #[test]
    fn live_at_header_destination_blocks_the_hoist() {
        // t1 carries a value into the loop that the loop reads before
        // redefining it — writing it in the preheader would clobber it.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 7)
            .lda(Reg::T1, Reg::ZERO, 1)
            .lda(Reg::A0, Reg::ZERO, 5)
            .label("top")
            .op(AluOp::Add, Reg::T1, Reg::A0, Reg::T2) // reads the incoming t1
            .op_imm(AluOp::Add, Reg::T0, 3, Reg::T1) // then redefines it
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .halt();
        let p = b.build().unwrap();
        let h = hoists(&p);
        assert!(
            h.loops
                .iter()
                .all(|lh| lh.insns.iter().all(|(_, i)| hoistable_dest(i) != Some(Reg::T1))),
            "the t1 redefinition must stay in the loop"
        );
    }
}
