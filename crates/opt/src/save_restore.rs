//! Callee-saved register reallocation (Figure 1(d)).
//!
//! A routine that uses callee-saved register `Rs` must save and restore it.
//! If the summaries prove some caller-saved register `Rt` is (a) untouched
//! by every call the routine makes (not call-killed) and (b) dead across
//! every call *to* the routine (not live at any of its exits), the value
//! can live in `Rt` instead: rename `Rs → Rt` throughout the body and
//! delete the save and restores. As a degenerate case, a save/restore of a
//! register the body never touches is deleted outright.

use spike_core::Analysis;
use spike_isa::{Instruction, Reg, RegSet};
use spike_program::{Program, RoutineId};

/// One reallocation decision for a routine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Realloc {
    pub routine: RoutineId,
    /// The callee-saved register freed.
    pub saved: Reg,
    /// The caller-saved register now holding the value, or `None` when the
    /// save/restore pair was simply dead (no body accesses).
    pub replacement: Option<Reg>,
    /// Save/restore instructions to delete.
    pub delete: Vec<u32>,
    /// Register renames to apply: `(addr, new instruction)`.
    pub rename: Vec<(u32, Instruction)>,
}

/// Rewrites every register field of `insn` equal to `from` into `to`.
fn rename_insn(insn: &Instruction, from: Reg, to: Reg) -> Instruction {
    let m = |r: Reg| if r == from { to } else { r };
    match *insn {
        Instruction::Operate { op, ra, rb, rc } => {
            Instruction::Operate { op, ra: m(ra), rb: m(rb), rc: m(rc) }
        }
        Instruction::OperateImm { op, ra, imm, rc } => {
            Instruction::OperateImm { op, ra: m(ra), imm, rc: m(rc) }
        }
        Instruction::Lda { rd, base, disp } => Instruction::Lda { rd: m(rd), base: m(base), disp },
        Instruction::Ldah { rd, base, disp } => {
            Instruction::Ldah { rd: m(rd), base: m(base), disp }
        }
        Instruction::Load { width, rd, base, disp } => {
            Instruction::Load { width, rd: m(rd), base: m(base), disp }
        }
        Instruction::Store { width, rs, base, disp } => {
            Instruction::Store { width, rs: m(rs), base: m(base), disp }
        }
        Instruction::FpOperate { op, fa, fb, fc } => {
            Instruction::FpOperate { op, fa: m(fa), fb: m(fb), fc: m(fc) }
        }
        Instruction::CondBranch { cond, ra, disp } => {
            Instruction::CondBranch { cond, ra: m(ra), disp }
        }
        Instruction::Jmp { base } => Instruction::Jmp { base: m(base) },
        Instruction::Jsr { base } => Instruction::Jsr { base: m(base) },
        Instruction::Ret { base } => Instruction::Ret { base: m(base) },
        other @ (Instruction::Br { .. }
        | Instruction::Bsr { .. }
        | Instruction::Halt
        | Instruction::PutInt) => other,
    }
}

/// The save/restore instructions for `reg` in routine `rid`: the prologue
/// store and the per-exit reloads, as found by the same structural rules
/// the §3.4 detector uses.
fn save_restore_sites(
    program: &Program,
    analysis: &Analysis,
    rid: RoutineId,
    reg: Reg,
) -> Option<Vec<u32>> {
    let cfg = analysis.cfg.routine_cfg(rid);
    let routine = program.routine(rid);
    let mut sites = Vec::new();

    for &entry in cfg.entries() {
        let block = cfg.block(entry);
        let mut found = false;
        for addr in block.start()..block.end() {
            if let Instruction::Store { rs, base: Reg::SP, .. } =
                routine.insn_at(addr).expect("address in routine")
            {
                if *rs == reg {
                    sites.push(addr);
                    found = true;
                    break;
                }
            }
        }
        if !found {
            return None;
        }
    }
    for &exit in cfg.exits() {
        let block = cfg.block(exit);
        let mut found = false;
        for addr in block.start()..block.end() {
            if let Instruction::Load { rd, base: Reg::SP, .. } =
                routine.insn_at(addr).expect("address in routine")
            {
                if *rd == reg {
                    sites.push(addr);
                    found = true;
                    break;
                }
            }
        }
        if !found {
            return None;
        }
    }
    Some(sites)
}

/// Whether some path from an entrance reaches a body use of `reg` before
/// a body definition of it (`sites` — the save/restore instructions — are
/// ignored). Such a use reads the caller's value.
fn body_reads_before_write(
    program: &Program,
    analysis: &Analysis,
    rid: RoutineId,
    reg: Reg,
    sites: &[u32],
) -> bool {
    let cfg = analysis.cfg.routine_cfg(rid);
    let routine = program.routine(rid);
    let n = cfg.blocks().len();
    let mut seen = vec![false; n];
    let mut stack: Vec<spike_cfg::BlockId> = cfg.entries().to_vec();
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut seen[b.index()], true) {
            continue;
        }
        let block = cfg.block(b);
        let mut defined = false;
        for addr in block.start()..block.end() {
            if sites.contains(&addr) {
                continue;
            }
            let insn = routine.insn_at(addr).expect("address in routine");
            if insn.uses().contains(reg) {
                return true;
            }
            if insn.defs().contains(reg) {
                defined = true;
                break;
            }
        }
        if !defined {
            for &s in block.succs() {
                stack.push(s);
            }
            // Control also continues at a call's return point.
            if let spike_cfg::TermKind::Call { return_to: Some(rt), .. } = block.term() {
                stack.push(*rt);
            }
        }
    }
    false
}

pub(crate) fn find_reallocs(program: &Program, analysis: &Analysis) -> Vec<Realloc> {
    let std = analysis.summary.calling_standard();
    let mut out = Vec::new();

    // Replacement registers are claimed *program-wide*: every rename adds
    // kills (and cross-call live ranges) of its replacement that the
    // pre-pass summaries do not know about, so no two decisions in one
    // pass may involve the same replacement register.
    let mut claimed = RegSet::EMPTY;

    for (rid, routine) in program.iter() {
        let summary = analysis.summary.routine(rid);
        if summary.saved_restored.is_empty() {
            continue;
        }
        // Two registers of the same routine may be renamed in one pass and
        // can share instructions (e.g. `subq s0, s1, v0`); renames compose
        // through this map so a later rename starts from the earlier one's
        // result instead of the original instruction.
        let mut pending: std::collections::BTreeMap<u32, Instruction> =
            std::collections::BTreeMap::new();
        let cfg = analysis.cfg.routine_cfg(rid);

        // Union of call-killed and call-used over every call the routine
        // makes, and of every register the body references.
        let mut killed_by_calls = RegSet::EMPTY;
        let mut used_by_calls = RegSet::EMPTY;
        for b in cfg.call_blocks() {
            if let Some(cs) = analysis.summary.call_site(&analysis.cfg, rid, b) {
                killed_by_calls |= cs.killed;
                used_by_calls |= cs.used;
            }
            killed_by_calls.insert(Reg::RA); // every call defines ra
        }
        let mut referenced = RegSet::EMPTY;
        for insn in routine.insns() {
            referenced |= insn.uses() | insn.defs();
        }
        let live_out_all = summary.live_at_exit.iter().fold(RegSet::EMPTY, |a, &s| a | s);

        for s in summary.saved_restored.iter() {
            let Some(sites) = save_restore_sites(program, analysis, rid, s) else {
                continue;
            };
            if sites.iter().any(|a| program.relocations().contains_key(a)) {
                continue;
            }

            // Body accesses = all accesses minus the save/restore sites.
            let body_accesses: Vec<u32> = (routine.addr()..routine.end_addr())
                .filter(|addr| {
                    if sites.contains(addr) {
                        return false;
                    }
                    let i = routine.insn_at(*addr).expect("address in routine");
                    i.uses().contains(s) || i.defs().contains(s)
                })
                .collect();

            if body_accesses.is_empty() {
                // Degenerate Figure 1(d): the save/restore pair is dead.
                out.push(Realloc {
                    routine: rid,
                    saved: s,
                    replacement: None,
                    delete: sites,
                    rename: Vec::new(),
                });
                continue;
            }

            // If some path can *read* s before the body writes it, the
            // value read is the caller's and cannot move to another
            // register. Likewise, a callee that genuinely reads s from its
            // caller would stop seeing this routine's writes.
            if body_reads_before_write(program, analysis, rid, s, &sites)
                || used_by_calls.contains(s)
            {
                continue;
            }

            // A caller-saved home for the value: untouched and unread by
            // the routine's calls, unreferenced in its body, dead at every
            // exit, and not already claimed anywhere in this pass.
            let candidate = std.temporary().iter().find(|&t| {
                !t.is_fp()
                    && !killed_by_calls.contains(t)
                    && !used_by_calls.contains(t)
                    && !referenced.contains(t)
                    && !live_out_all.contains(t)
                    && !claimed.contains(t)
            });
            let Some(t) = candidate else {
                continue;
            };
            claimed.insert(t);

            let rename: Vec<(u32, Instruction)> = body_accesses
                .iter()
                .map(|&addr| {
                    let original = routine.insn_at(addr).expect("address in routine");
                    let base = pending.get(&addr).copied().unwrap_or(*original);
                    let renamed = rename_insn(&base, s, t);
                    pending.insert(addr, renamed);
                    (addr, renamed)
                })
                .collect();
            out.push(Realloc {
                routine: rid,
                saved: s,
                replacement: Some(t),
                delete: sites,
                rename,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_core::analyze;
    use spike_isa::AluOp;
    use spike_program::ProgramBuilder;

    /// Figure 1(d): the value held in s0 can live in a temporary the call
    /// does not kill; the save/restore disappears.
    #[test]
    fn reallocates_callee_saved_to_quiet_temp() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").halt();
        b.routine("f")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::RA, Reg::SP, 8)
            .store(Reg::S0, Reg::SP, 0)
            .def(Reg::S0)
            .call("quiet")
            .use_reg(Reg::S0)
            .load(Reg::S0, Reg::SP, 0)
            .load(Reg::RA, Reg::SP, 8)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        b.routine("quiet").def(Reg::V0).ret(); // kills only v0 (+ra at the call)
        let p = b.build().unwrap();
        let r = find_reallocs(&p, &analyze(&p));
        assert_eq!(r.len(), 1);
        let f = p.routine_by_name("f").unwrap();
        assert_eq!(r[0].routine, f);
        assert_eq!(r[0].saved, Reg::S0);
        let t = r[0].replacement.expect("found a home");
        assert!(analyze(&p).summary.calling_standard().temporary().contains(t));
        assert_eq!(r[0].delete.len(), 2); // store + one reload
        assert_eq!(r[0].rename.len(), 2); // def + use
    }

    /// If every temporary is killed by a call in the routine, s0 stays.
    #[test]
    fn no_home_means_no_change() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").halt();
        b.routine("f")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::RA, Reg::SP, 8)
            .store(Reg::S0, Reg::SP, 0)
            .def(Reg::S0)
            .lda(Reg::PV, Reg::ZERO, 1)
            .jsr_unknown(Reg::PV) // kills all temporaries
            .use_reg(Reg::S0)
            .load(Reg::S0, Reg::SP, 0)
            .load(Reg::RA, Reg::SP, 8)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        let p = b.build().unwrap();
        let r = find_reallocs(&p, &analyze(&p));
        assert!(r.is_empty(), "{r:?}");
    }

    /// A save/restore with no body accesses is dead outright.
    #[test]
    fn dead_save_restore_is_deleted() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").halt();
        b.routine("f")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::S0, Reg::SP, 0)
            .op(AluOp::Add, Reg::A0, Reg::A0, Reg::V0)
            .load(Reg::S0, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        let p = b.build().unwrap();
        let r = find_reallocs(&p, &analyze(&p));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].replacement, None);
        assert_eq!(r[0].delete.len(), 2);
        assert!(r[0].rename.is_empty());
    }

    #[test]
    fn rename_rewrites_every_field() {
        let i = Instruction::Operate { op: AluOp::Add, ra: Reg::S0, rb: Reg::S0, rc: Reg::S0 };
        assert_eq!(
            rename_insn(&i, Reg::S0, Reg::T0),
            Instruction::Operate { op: AluOp::Add, ra: Reg::T0, rb: Reg::T0, rc: Reg::T0 }
        );
        let st = Instruction::Store {
            width: spike_isa::MemWidth::Q,
            rs: Reg::S0,
            base: Reg::SP,
            disp: 4,
        };
        assert_eq!(
            rename_insn(&st, Reg::S0, Reg::T1),
            Instruction::Store {
                width: spike_isa::MemWidth::Q,
                rs: Reg::T1,
                base: Reg::SP,
                disp: 4
            }
        );
    }
}
