//! Intra-routine liveness with interprocedural boundary values (§2).
//!
//! The paper's optimization model: replace each call with a call-summary
//! instruction (uses = call-used, defs = call-defined, kills =
//! call-killed), insert an exit instruction using live-at-exit at each
//! `ret`, then run ordinary intraprocedural liveness. This module is that
//! computation, with the call-summary/exit values drawn from a completed
//! [`spike_core::Analysis`].

use spike_cfg::{BlockId, RoutineCfg, TermKind};
use spike_core::{Analysis, CallSiteSummary};
use spike_isa::{Instruction, RegSet};
use spike_program::{Program, RoutineId};

/// Per-block liveness for one routine: the registers live at block entry
/// (`live_in`) and immediately after the block's last instruction
/// (`live_end`), with calls summarized by their call-site summaries.
#[derive(Clone, Debug)]
pub struct RoutineLiveness {
    live_in: Vec<RegSet>,
    live_end: Vec<RegSet>,
}

impl RoutineLiveness {
    /// Registers live at the entry of `b`.
    pub fn live_in(&self, b: BlockId) -> RegSet {
        self.live_in[b.index()]
    }

    /// Registers live immediately after the last instruction of `b`
    /// (after the callee's effects, for call blocks).
    pub fn live_end(&self, b: BlockId) -> RegSet {
        self.live_end[b.index()]
    }
}

/// The liveness boundary at the end of `b`, before applying the block's
/// own instructions.
fn block_end_live(
    program: &Program,
    analysis: &Analysis,
    rid: RoutineId,
    cfg: &RoutineCfg,
    b: BlockId,
    live_in: &[RegSet],
) -> RegSet {
    let block = cfg.block(b);
    match block.term() {
        TermKind::Ret => {
            let i = cfg.exits().iter().position(|&x| x == b).expect("exit block");
            analysis.summary.routine(rid).live_at_exit[i]
        }
        TermKind::Halt => RegSet::EMPTY,
        TermKind::UnknownJump => program.jump_hint(block.term_addr()).unwrap_or(RegSet::ALL),
        TermKind::Call { return_to, .. } => match return_to {
            Some(rt) => live_in[rt.index()],
            None => RegSet::EMPTY,
        },
        _ => {
            let mut acc = RegSet::EMPTY;
            for &s in block.succs() {
                acc |= live_in[s.index()];
            }
            acc
        }
    }
}

/// Steps liveness backward over one instruction. For the call terminator
/// of a call block, pass the call-site summary so the callee's effects are
/// applied (the paper's call-summary instruction).
pub fn step_back(live_after: RegSet, insn: &Instruction, call: Option<&CallSiteSummary>) -> RegSet {
    match call {
        Some(cs) => {
            debug_assert!(insn.is_call(), "summary supplied for a non-call");
            // The callee runs after the call instruction's own effects.
            let after_callee = cs.used | (live_after - cs.defined);
            insn.uses() | (after_callee - insn.defs())
        }
        None => insn.uses() | (live_after - insn.defs()),
    }
}

/// Computes per-block liveness for routine `rid`, optionally treating the
/// addresses in `ignore` as deleted (their uses and defs are skipped) —
/// used by the dead-code pass to cascade without rebuilding the program.
pub fn routine_liveness(
    program: &Program,
    analysis: &Analysis,
    rid: RoutineId,
    ignore: &dyn Fn(u32) -> bool,
) -> RoutineLiveness {
    let cfg = analysis.cfg.routine_cfg(rid);
    let routine = program.routine(rid);
    let n = cfg.blocks().len();
    let mut live_in = vec![RegSet::EMPTY; n];
    let mut live_end = vec![RegSet::EMPTY; n];

    // Iterate to fixpoint; routine CFGs are small and reducible, so a few
    // reverse sweeps suffice.
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..n).rev() {
            let b = BlockId::from_index(bi);
            let block = cfg.block(b);
            let end = block_end_live(program, analysis, rid, cfg, b, &live_in);

            let mut live = end;
            for addr in (block.start()..block.end()).rev() {
                if ignore(addr) {
                    continue;
                }
                let insn = routine.insn_at(addr).expect("address in routine");
                let cs = if addr == block.term_addr() && insn.is_call() {
                    analysis.summary.call_site(&analysis.cfg, rid, b)
                } else {
                    None
                };
                live = step_back(live, insn, cs.as_ref());
            }

            if end != live_end[bi] || live != live_in[bi] {
                live_end[bi] = end;
                live_in[bi] = live;
                changed = true;
            }
        }
    }

    RoutineLiveness { live_in, live_end }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_core::analyze;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    #[test]
    fn argument_live_before_call_result_live_after() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("id").copy(Reg::V0, Reg::T0).halt();
        b.routine("id").copy(Reg::A0, Reg::V0).ret();
        let p = b.build().unwrap();
        let a = analyze(&p);
        let main = p.routine_by_name("main").unwrap();
        let l = routine_liveness(&p, &a, main, &|_| false);

        // After the call (block 1 entry) v0 is live; a0 is not.
        let b1 = BlockId::from_index(1);
        assert!(l.live_in(b1).contains(Reg::V0));
        assert!(!l.live_in(b1).contains(Reg::A0));
        // At the call block's end the callee has run.
        let b0 = BlockId::from_index(0);
        assert_eq!(l.live_end(b0), l.live_in(b1));
    }

    #[test]
    fn ignore_mask_removes_uses() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).use_reg(Reg::T0).halt();
        let p = b.build().unwrap();
        let a = analyze(&p);
        let main = p.routine_by_name("main").unwrap();
        let base = p.routine(main).addr();

        let l = routine_liveness(&p, &a, main, &|_| false);
        // t0 is not live at entry (defined first).
        assert!(!l.live_in(BlockId::from_index(0)).contains(Reg::T0));

        // Ignoring the def exposes the use: t0 becomes live at entry.
        let l = routine_liveness(&p, &a, main, &|addr| addr == base);
        assert!(l.live_in(BlockId::from_index(0)).contains(Reg::T0));
    }

    #[test]
    fn exit_liveness_comes_from_summary() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").use_reg(Reg::T3).halt();
        b.routine("f").ret();
        let p = b.build().unwrap();
        let a = analyze(&p);
        let f = p.routine_by_name("f").unwrap();
        let l = routine_liveness(&p, &a, f, &|_| false);
        // t3 is used after returning to main, so it is live at f's exit
        // and at its entry.
        assert!(l.live_in(BlockId::from_index(0)).contains(Reg::T3));
    }
}
