//! Dead-code elimination across call boundaries (Figure 1(a) and 1(b)).
//!
//! An instruction whose results are never read can be deleted. What makes
//! the post-link version interesting is *which* reads count: with the
//! interprocedural summaries, a value that only flows out of the routine
//! is dead when no caller reads it on return (live-at-exit, Figure 1(a)),
//! and an argument set up for a call is dead when the callee never reads
//! it (call-used, Figure 1(b)). A traditional compiler, seeing one module
//! at a time, must assume both are live.

use std::collections::BTreeSet;

use spike_core::Analysis;
use spike_isa::Instruction;
use spike_program::Program;

use crate::liveness::{routine_liveness, step_back};

/// Whether deleting `insn` can never change observable behaviour when its
/// results are dead: pure register computations and loads (our machine
/// model has no faulting loads).
fn is_pure(insn: &Instruction) -> bool {
    matches!(
        insn,
        Instruction::Operate { .. }
            | Instruction::OperateImm { .. }
            | Instruction::Lda { .. }
            | Instruction::Ldah { .. }
            | Instruction::Load { .. }
            | Instruction::FpOperate { .. }
    )
}

/// Finds all dead instructions, cascading (a deleted def can make its
/// operands' defs dead) until no more are found. Returns the set of dead
/// instruction addresses; the caller applies them with a
/// [`spike_program::Rewriter`].
pub(crate) fn find_dead(program: &Program, analysis: &Analysis) -> BTreeSet<u32> {
    let mut dead: BTreeSet<u32> = BTreeSet::new();

    for (rid, routine) in program.iter() {
        let cfg = analysis.cfg.routine_cfg(rid);
        loop {
            let live = routine_liveness(program, analysis, rid, &|a| dead.contains(&a));
            let mut found = false;

            for (bi, block) in cfg.blocks().iter().enumerate() {
                let b = spike_cfg::BlockId::from_index(bi);
                let mut l = live.live_end(b);
                for addr in (block.start()..block.end()).rev() {
                    if dead.contains(&addr) {
                        continue;
                    }
                    let insn = routine.insn_at(addr).expect("address in routine");
                    let defs = insn.defs();
                    if is_pure(insn)
                        && !defs.is_empty()
                        && defs.is_disjoint(l)
                        && !program.relocations().contains_key(&addr)
                    {
                        dead.insert(addr);
                        found = true;
                        continue; // its uses no longer keep anything live
                    }
                    let cs = if addr == block.term_addr() && insn.is_call() {
                        analysis.summary.call_site(&analysis.cfg, rid, b)
                    } else {
                        None
                    };
                    l = step_back(l, insn, cs.as_ref());
                }
            }

            if !found {
                break;
            }
        }
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_core::analyze;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    fn dead_count(p: &Program) -> usize {
        find_dead(p, &analyze(p)).len()
    }

    /// Figure 1(a): a value defined for the caller but never used on any
    /// return is dead.
    #[test]
    fn dead_return_value_is_found() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").halt(); // never reads v0
        b.routine("f").def(Reg::T0).def(Reg::V0).copy(Reg::T0, Reg::V0).ret();
        let p = b.build().unwrap();
        // def v0 (overwritten) + the whole v0 chain is dead since main
        // ignores it: def t0, def v0, copy are all dead.
        assert_eq!(dead_count(&p), 3);
    }

    /// Figure 1(b): an argument the callee never reads is dead.
    #[test]
    fn dead_argument_is_found() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::A0) // read by f
            .def(Reg::A1) // never read by f: dead
            .call("f")
            .halt();
        b.routine("f").use_reg(Reg::A0).ret();
        let p = b.build().unwrap();
        let dead = find_dead(&p, &analyze(&p));
        let base = p.routines()[0].addr();
        assert_eq!(dead, [base + 1].into_iter().collect());
    }

    /// Values that feed observable output stay: the argument is call-used
    /// and the result flows into `put_int`.
    #[test]
    fn live_values_are_kept() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("f").put_int().halt();
        b.routine("f").copy(Reg::A0, Reg::V0).ret();
        let p = b.build().unwrap();
        assert_eq!(dead_count(&p), 0);
    }

    #[test]
    fn cascading_deletion() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .op(spike_isa::AluOp::Add, Reg::T0, Reg::T0, Reg::T1) // uses t0
            .op(spike_isa::AluOp::Add, Reg::T1, Reg::T1, Reg::T2) // uses t1
            .halt(); // t2 never used
        let p = b.build().unwrap();
        // t2 dead → t1's def dead → t0's def dead.
        assert_eq!(dead_count(&p), 3);
    }

    #[test]
    fn stores_and_putint_are_never_deleted() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).store(Reg::T0, Reg::SP, 0).put_int().halt();
        let p = b.build().unwrap();
        assert_eq!(dead_count(&p), 0);
    }

    #[test]
    fn unknown_calls_keep_everything_conservative() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::A0) // assumed used by the unknown callee
            .lda(Reg::PV, Reg::ZERO, 1)
            .jsr_unknown(Reg::PV)
            .halt();
        let p = b.build().unwrap();
        assert_eq!(dead_count(&p), 0);
    }
}
