//! Spill elimination around calls (Figure 1(c)).
//!
//! Compilers spill caller-saved registers around calls because they must
//! assume the callee clobbers them. The interprocedural summary often
//! proves otherwise: when register `Rt` is **not** in a call's call-killed
//! set, a `store Rt, d(sp)` just before the call paired with a
//! `load Rt, d(sp)` just after it moves a value the call never touched —
//! both instructions can go.
//!
//! The pattern matched is deliberately strict (the value must demonstrably
//! round-trip through an otherwise-unused slot):
//!
//! * the store sits in the call block with no later definition of `Rt` or
//!   `sp` before the call;
//! * the load is in the call's return block, with no earlier definition of
//!   `Rt` or `sp` and no intervening memory write;
//! * `Rt` is not call-killed (nor `ra`, which every call defines);
//! * no other instruction in the routine accesses `d(sp)`, and the
//!   routine never re-points `sp` between frame setup and teardown other
//!   than in prologue/epilogue (checked by requiring the store and load to
//!   share the block pair).

use spike_cfg::TermKind;
use spike_core::Analysis;
use spike_isa::{Instruction, Reg, RegSet};
use spike_program::Program;

/// One removable spill pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct SpillPair {
    pub store_addr: u32,
    pub load_addr: u32,
}

/// Counts accesses to `sp+disp` in the whole routine.
fn slot_accesses(program: &Program, rid: spike_program::RoutineId, disp: i16) -> usize {
    let r = program.routine(rid);
    r.insns()
        .iter()
        .filter(|i| match i {
            Instruction::Load { base: Reg::SP, disp: d, .. }
            | Instruction::Store { base: Reg::SP, disp: d, .. } => *d == disp,
            _ => false,
        })
        .count()
}

pub(crate) fn find_spills(program: &Program, analysis: &Analysis) -> Vec<SpillPair> {
    let mut pairs = Vec::new();

    for (rid, routine) in program.iter() {
        let cfg = analysis.cfg.routine_cfg(rid);
        for b in cfg.call_blocks() {
            let block = cfg.block(b);
            let TermKind::Call { return_to: Some(rt), .. } = block.term() else {
                continue;
            };
            let Some(cs) = analysis.summary.call_site(&analysis.cfg, rid, b) else {
                continue;
            };
            let ret_block = cfg.block(*rt);

            // Candidate stores in the call block, scanning backward from
            // the call; track what gets defined after each store.
            let mut defined_after =
                routine.insn_at(block.term_addr()).expect("call instruction").defs();
            for addr in (block.start()..block.term_addr()).rev() {
                let insn = routine.insn_at(addr).expect("address in routine");
                if let Instruction::Store { rs, base: Reg::SP, disp, .. } = *insn {
                    let protected = !cs.killed.contains(rs)
                        && rs != Reg::RA
                        && !defined_after.contains(rs)
                        && !defined_after.contains(Reg::SP)
                        && slot_accesses(program, rid, disp) == 2;
                    if protected {
                        if let Some(load_addr) =
                            matching_load(routine, ret_block, rs, disp, cs.defined)
                        {
                            pairs.push(SpillPair { store_addr: addr, load_addr });
                        }
                    }
                }
                defined_after |= insn.defs();
            }
        }
    }
    pairs
}

/// Finds a reload of `(reg, disp)` in the return block with nothing
/// disturbing the register or slot before it. `call_defined` are the
/// registers the callee wrote; the reloaded register must not be among
/// them (its pre-call value is what survives).
fn matching_load(
    routine: &spike_program::Routine,
    ret_block: &spike_cfg::BasicBlock,
    reg: Reg,
    disp: i16,
    call_defined: RegSet,
) -> Option<u32> {
    if call_defined.contains(reg) {
        return None;
    }
    for addr in ret_block.start()..ret_block.end() {
        let insn = routine.insn_at(addr).expect("address in routine");
        match *insn {
            Instruction::Load { rd, base: Reg::SP, disp: d, .. } if rd == reg && d == disp => {
                return Some(addr);
            }
            Instruction::Store { .. } => return None, // may alias the slot
            _ => {
                if insn.defs().contains(reg) || insn.defs().contains(Reg::SP) {
                    return None;
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_core::analyze;
    use spike_program::ProgramBuilder;

    fn pairs_of(p: &Program) -> Vec<SpillPair> {
        find_spills(p, &analyze(p))
    }

    /// Figure 1(c): the callee does not kill t0, so the spill around the
    /// call is removable.
    #[test]
    fn removable_spill_is_found() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .store(Reg::T0, Reg::SP, -8)
            .call("quiet")
            .load(Reg::T0, Reg::SP, -8)
            .copy(Reg::T0, Reg::V0)
            .put_int()
            .halt();
        b.routine("quiet").def(Reg::int(6)).ret(); // touches only t5
        let p = b.build().unwrap();
        let pairs = pairs_of(&p);
        assert_eq!(pairs.len(), 1);
        let base = p.routines()[0].addr();
        assert_eq!(pairs[0], SpillPair { store_addr: base + 1, load_addr: base + 3 });
    }

    /// If the callee kills the register, the spill must stay.
    #[test]
    fn killed_register_keeps_its_spill() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .store(Reg::T0, Reg::SP, -8)
            .call("clobber")
            .load(Reg::T0, Reg::SP, -8)
            .copy(Reg::T0, Reg::V0)
            .put_int()
            .halt();
        b.routine("clobber").def(Reg::T0).ret();
        let p = b.build().unwrap();
        assert!(pairs_of(&p).is_empty());
    }

    /// A slot read somewhere else pins both instructions.
    #[test]
    fn shared_slot_is_not_touched() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .store(Reg::T0, Reg::SP, -8)
            .call("quiet")
            .load(Reg::T0, Reg::SP, -8)
            .load(Reg::T1, Reg::SP, -8) // second reader
            .halt();
        b.routine("quiet").ret();
        let p = b.build().unwrap();
        assert!(pairs_of(&p).is_empty());
    }

    /// An unknown callee kills all temporaries, so nothing fires.
    #[test]
    fn unknown_callee_keeps_spills() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .store(Reg::T0, Reg::SP, -8)
            .lda(Reg::PV, Reg::ZERO, 1)
            .jsr_unknown(Reg::PV)
            .load(Reg::T0, Reg::SP, -8)
            .halt();
        let p = b.build().unwrap();
        assert!(pairs_of(&p).is_empty());
    }

    /// A redefinition between the reload and the store's value kills the
    /// pattern.
    #[test]
    fn redefined_register_keeps_spill() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .store(Reg::T0, Reg::SP, -8)
            .def(Reg::T0) // redefined before the call
            .call("quiet")
            .load(Reg::T0, Reg::SP, -8)
            .halt();
        b.routine("quiet").ret();
        let p = b.build().unwrap();
        assert!(pairs_of(&p).is_empty());
    }
}
