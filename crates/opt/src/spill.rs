//! Spill elimination around calls (Figure 1(c)).
//!
//! Compilers spill caller-saved registers around calls because they must
//! assume the callee clobbers them. The interprocedural summary often
//! proves otherwise: when register `Rt` is **not** in a call's call-killed
//! set, a `store Rt, d(sp)` just before the call paired with a
//! `load Rt, d(sp)` just after it moves a value the call never touched —
//! both instructions can go.
//!
//! The pattern matched is deliberately strict (the value must demonstrably
//! round-trip through an otherwise-unused slot):
//!
//! * the store sits in the call block with no later definition of `Rt` or
//!   `sp` before the call;
//! * the load is in the call's return block, with no earlier definition of
//!   `Rt` or `sp` and no intervening memory write;
//! * `Rt` is not call-killed (nor `ra`, which every call defines);
//! * no other instruction in the routine accesses `d(sp)`, and the
//!   routine never re-points `sp` between frame setup and teardown other
//!   than in prologue/epilogue (checked by requiring the store and load to
//!   share the block pair).
//!
//! Every pair also carries a *placement weight*: the dynamic instructions
//! its removal saves. Statically the weight scales with the call block's
//! loop-nesting depth (a spill inside a loop is worth an order of
//! magnitude more per level, the classic spill-cost heuristic); with an
//! execution profile of the input image the weight is the measured
//! execution count of the two instructions. The weights feed the
//! optimizer's `spill_dynamic_saved` accounting and the `report pgo`
//! tables.

use spike_cfg::{DomTree, LoopForest, TermKind};
use spike_core::Analysis;
use spike_isa::{Instruction, Reg, RegSet};
use spike_profile::Profile;
use spike_program::Program;

/// One removable spill pair, weighted by the dynamic instructions its
/// removal saves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct SpillPair {
    pub store_addr: u32,
    pub load_addr: u32,
    /// Dynamic instructions saved: measured (profile counts of the two
    /// instructions) or estimated (2 executions per visit, ×10 per loop
    /// nesting level of the call block).
    pub weight: u64,
}

/// Counts accesses to `sp+disp` in the whole routine.
fn slot_accesses(program: &Program, rid: spike_program::RoutineId, disp: i16) -> usize {
    let r = program.routine(rid);
    r.insns()
        .iter()
        .filter(|i| match i {
            Instruction::Load { base: Reg::SP, disp: d, .. }
            | Instruction::Store { base: Reg::SP, disp: d, .. } => *d == disp,
            _ => false,
        })
        .count()
}

pub(crate) fn find_spills(
    program: &Program,
    analysis: &Analysis,
    profile: Option<&Profile>,
) -> Vec<SpillPair> {
    let mut pairs = Vec::new();

    for (rid, routine) in program.iter() {
        let cfg = analysis.cfg.routine_cfg(rid);
        // Loop depth prices the pairs when no profile is available; the
        // forest is only needed then.
        let forest = if profile.is_none() {
            let dom = DomTree::dominators_linked(cfg);
            Some(LoopForest::build(cfg, &dom))
        } else {
            None
        };
        for b in cfg.call_blocks() {
            let block = cfg.block(b);
            let TermKind::Call { return_to: Some(rt), .. } = block.term() else {
                continue;
            };
            let Some(cs) = analysis.summary.call_site(&analysis.cfg, rid, b) else {
                continue;
            };
            let ret_block = cfg.block(*rt);

            // Candidate stores in the call block, scanning backward from
            // the call; track what gets defined after each store.
            let mut defined_after =
                routine.insn_at(block.term_addr()).expect("call instruction").defs();
            for addr in (block.start()..block.term_addr()).rev() {
                let insn = routine.insn_at(addr).expect("address in routine");
                if let Instruction::Store { rs, base: Reg::SP, disp, .. } = *insn {
                    let protected = !cs.killed.contains(rs)
                        && rs != Reg::RA
                        && !defined_after.contains(rs)
                        && !defined_after.contains(Reg::SP)
                        && slot_accesses(program, rid, disp) == 2;
                    if protected {
                        if let Some(load_addr) =
                            matching_load(routine, ret_block, rs, disp, cs.defined)
                        {
                            let weight = match (profile, &forest) {
                                (Some(p), _) => p.count_at(addr) + p.count_at(load_addr),
                                (None, Some(f)) => 2 * 10u64.saturating_pow(f.depth_of(b).min(9)),
                                (None, None) => 2,
                            };
                            pairs.push(SpillPair { store_addr: addr, load_addr, weight });
                        }
                    }
                }
                defined_after |= insn.defs();
            }
        }
    }
    pairs
}

/// Finds a reload of `(reg, disp)` in the return block with nothing
/// disturbing the register or slot before it. `call_defined` are the
/// registers the callee wrote; the reloaded register must not be among
/// them (its pre-call value is what survives).
fn matching_load(
    routine: &spike_program::Routine,
    ret_block: &spike_cfg::BasicBlock,
    reg: Reg,
    disp: i16,
    call_defined: RegSet,
) -> Option<u32> {
    if call_defined.contains(reg) {
        return None;
    }
    for addr in ret_block.start()..ret_block.end() {
        let insn = routine.insn_at(addr).expect("address in routine");
        match *insn {
            Instruction::Load { rd, base: Reg::SP, disp: d, .. } if rd == reg && d == disp => {
                return Some(addr);
            }
            Instruction::Store { .. } => return None, // may alias the slot
            _ => {
                if insn.defs().contains(reg) || insn.defs().contains(Reg::SP) {
                    return None;
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_core::analyze;
    use spike_program::ProgramBuilder;

    fn pairs_of(p: &Program) -> Vec<SpillPair> {
        find_spills(p, &analyze(p), None)
    }

    /// Figure 1(c): the callee does not kill t0, so the spill around the
    /// call is removable.
    #[test]
    fn removable_spill_is_found() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .store(Reg::T0, Reg::SP, -8)
            .call("quiet")
            .load(Reg::T0, Reg::SP, -8)
            .copy(Reg::T0, Reg::V0)
            .put_int()
            .halt();
        b.routine("quiet").def(Reg::int(6)).ret(); // touches only t5
        let p = b.build().unwrap();
        let pairs = pairs_of(&p);
        assert_eq!(pairs.len(), 1);
        let base = p.routines()[0].addr();
        assert_eq!(pairs[0].store_addr, base + 1);
        assert_eq!(pairs[0].load_addr, base + 3);
        // Straight-line code: depth 0, so the pair is worth exactly its
        // two instructions per execution.
        assert_eq!(pairs[0].weight, 2);
    }

    /// A spill inside a loop is priced an order of magnitude above one in
    /// straight-line code; a profile replaces the estimate with the
    /// measured counts.
    #[test]
    fn loop_spills_are_weighted_heavier_and_profiles_override() {
        use spike_isa::BranchCond;
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T1, Reg::ZERO, 3)
            .label("top")
            .lda(Reg::T0, Reg::ZERO, 11)
            .store(Reg::T0, Reg::SP, -8)
            .call("quiet")
            .load(Reg::T0, Reg::SP, -8)
            .op_imm(spike_isa::AluOp::Sub, Reg::T1, 1, Reg::T1)
            .cond(BranchCond::Ne, Reg::T1, "top")
            .halt();
        b.routine("quiet").lda(Reg::int(6), Reg::ZERO, 1).ret();
        let p = b.build().unwrap();

        let pairs = pairs_of(&p);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].weight, 20, "depth-1 spill must be priced 2 * 10^1");

        let (_, exec) = spike_sim::run_profiled(&p, 10_000);
        let prof = Profile::collect(&p, &exec);
        let weighed = find_spills(&p, &analyze(&p), Some(&prof));
        assert_eq!(weighed.len(), 1);
        // Three iterations execute the store and the load three times
        // each: six measured dynamic instructions saved.
        assert_eq!(weighed[0].weight, 6);
    }

    /// If the callee kills the register, the spill must stay.
    #[test]
    fn killed_register_keeps_its_spill() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .store(Reg::T0, Reg::SP, -8)
            .call("clobber")
            .load(Reg::T0, Reg::SP, -8)
            .copy(Reg::T0, Reg::V0)
            .put_int()
            .halt();
        b.routine("clobber").def(Reg::T0).ret();
        let p = b.build().unwrap();
        assert!(pairs_of(&p).is_empty());
    }

    /// A slot read somewhere else pins both instructions.
    #[test]
    fn shared_slot_is_not_touched() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .store(Reg::T0, Reg::SP, -8)
            .call("quiet")
            .load(Reg::T0, Reg::SP, -8)
            .load(Reg::T1, Reg::SP, -8) // second reader
            .halt();
        b.routine("quiet").ret();
        let p = b.build().unwrap();
        assert!(pairs_of(&p).is_empty());
    }

    /// An unknown callee kills all temporaries, so nothing fires.
    #[test]
    fn unknown_callee_keeps_spills() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .store(Reg::T0, Reg::SP, -8)
            .lda(Reg::PV, Reg::ZERO, 1)
            .jsr_unknown(Reg::PV)
            .load(Reg::T0, Reg::SP, -8)
            .halt();
        let p = b.build().unwrap();
        assert!(pairs_of(&p).is_empty());
    }

    /// A redefinition between the reload and the store's value kills the
    /// pattern.
    #[test]
    fn redefined_register_keeps_spill() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .store(Reg::T0, Reg::SP, -8)
            .def(Reg::T0) // redefined before the call
            .call("quiet")
            .load(Reg::T0, Reg::SP, -8)
            .halt();
        b.routine("quiet").ret();
        let p = b.build().unwrap();
        assert!(pairs_of(&p).is_empty());
    }
}
