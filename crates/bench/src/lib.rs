//! # spike-bench
//!
//! Measurement harness for reproducing the paper's evaluation (§4):
//! Tables 1–5 and Figures 13–15, plus an optimization-impact report for
//! the Figure 1 motivation. The `report` binary prints each table;
//! the Criterion benches under `benches/` time the same workloads.
//!
//! All workloads come from `spike-synth`'s paper-calibrated profiles; a
//! `scale` factor shrinks every benchmark proportionally so the full
//! matrix runs quickly (pass `--scale 1` for paper-sized programs).

use std::time::Instant;

use spike_baseline::{analyze_baseline_with, BaselineAnalysis};
use spike_core::{analyze_with, Analysis, AnalysisOptions};
use spike_program::Program;
use spike_synth::{generate, Profile};

/// Default generator seed used by the report and benches.
pub const DEFAULT_SEED: u64 = 0x5B1CE;

/// Everything measured for one benchmark.
#[derive(Debug)]
pub struct BenchRun {
    /// The profile measured.
    pub profile: Profile,
    /// The generated program.
    pub program: Program,
    /// PSG analysis (branch nodes on).
    pub analysis: Analysis,
    /// PSG analysis with branch nodes disabled (the Table 4 ablation).
    pub no_branch_nodes: Analysis,
    /// Full-CFG baseline, if requested.
    pub baseline: Option<BaselineAnalysis>,
    /// Wall-clock to generate the program (not analysis time).
    pub generate_secs: f64,
}

impl BenchRun {
    /// Generates and analyzes `profile` at `scale`. `threads` selects the
    /// front-end worker count (`0` = all available hardware threads).
    pub fn measure(
        profile: &Profile,
        scale: f64,
        seed: u64,
        with_baseline: bool,
        threads: usize,
    ) -> BenchRun {
        let t = Instant::now();
        let program = generate(profile, scale, seed);
        let generate_secs = t.elapsed().as_secs_f64();

        let options = AnalysisOptions { threads, ..AnalysisOptions::default() };
        let analysis = analyze_with(&program, &options);
        let ablated = AnalysisOptions { branch_nodes: false, ..options.clone() };
        let no_branch_nodes = analyze_with(&program, &ablated);
        let baseline = with_baseline.then(|| analyze_baseline_with(&program, &options));

        BenchRun {
            profile: profile.clone(),
            program,
            analysis,
            no_branch_nodes,
            baseline,
            generate_secs,
        }
    }

    /// Routine count of the generated program.
    pub fn routines(&self) -> usize {
        self.program.routines().len()
    }

    /// Basic blocks (call-ended, as in Table 2).
    pub fn blocks(&self) -> usize {
        self.analysis.cfg.total_blocks()
    }

    /// Total instructions.
    pub fn instructions(&self) -> usize {
        self.program.total_instructions()
    }

    /// Total analysis time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.analysis.stats.total().as_secs_f64()
    }

    /// Analysis memory in megabytes.
    pub fn memory_mb(&self) -> f64 {
        self.analysis.stats.memory_bytes as f64 / 1e6
    }

    /// Table 4's PSG edge reduction from branch nodes, in percent.
    pub fn edge_reduction_pct(&self) -> f64 {
        let with = self.analysis.psg.stats().edges as f64;
        let without = self.no_branch_nodes.psg.stats().edges as f64;
        100.0 * (without - with) / without
    }

    /// Table 4's PSG node increase from branch nodes, in percent.
    pub fn node_increase_pct(&self) -> f64 {
        let with = self.analysis.psg.stats().nodes as f64;
        let without = self.no_branch_nodes.psg.stats().nodes as f64;
        100.0 * (with - without) / without
    }
}

/// Simple linear regression of `y` on `x`; returns `(slope, intercept,
/// r_squared)`. Used by the Figure 14/15 reports to quantify the paper's
/// "near-linear" scaling claim.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than two points.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64, f64) {
    assert_eq!(x.len(), y.len(), "mismatched series");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sxx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    let syy: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    (slope, intercept, r2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_synth::profile;

    #[test]
    fn measure_produces_consistent_counts() {
        let p = profile("compress").unwrap();
        let run = BenchRun::measure(&p, 0.2, DEFAULT_SEED, true, 0);
        assert!(run.routines() >= 2);
        assert!(run.blocks() > run.routines());
        assert!(run.instructions() > run.blocks());
        assert!(run.total_secs() >= 0.0);
        assert!(run.memory_mb() > 0.0);
        // The ablation can only have at least as many edges.
        assert!(run.edge_reduction_pct() >= 0.0);
        // Baseline results agree with the PSG.
        let base = run.baseline.as_ref().unwrap();
        for (rid, _) in run.program.iter() {
            assert_eq!(run.analysis.summary.routine(rid), &base.summaries[rid.index()]);
        }
    }

    /// The harness dogfoods the representation contract at a bench-like
    /// scale: dense and sparse runs of the same workload are
    /// bit-identical in every observable, and the sparse engine never
    /// spends more visits.
    #[test]
    fn dense_and_sparse_agree_at_bench_scale() {
        use spike_core::Representation;
        for name in ["compress", "gcc"] {
            let p = profile(name).unwrap();
            let program = generate(&p, 0.2, DEFAULT_SEED);
            let dense = analyze_with(
                &program,
                &AnalysisOptions {
                    representation: Representation::Dense,
                    ..AnalysisOptions::default()
                },
            );
            let sparse = analyze_with(
                &program,
                &AnalysisOptions {
                    representation: Representation::Sparse,
                    ..AnalysisOptions::default()
                },
            );
            for (rid, r) in program.iter() {
                assert_eq!(
                    dense.summary.routine(rid),
                    sparse.summary.routine(rid),
                    "dense vs sparse summary mismatch for {} in {name}",
                    r.name()
                );
            }
            assert_eq!(dense.psg, sparse.psg, "dense vs sparse PSG mismatch in {name}");
            assert_eq!(dense.stats.memory_bytes, sparse.stats.memory_bytes);
            assert!(
                sparse.stats.phase1_visits + sparse.stats.phase2_visits
                    <= dense.stats.phase1_visits + dense.stats.phase2_visits,
                "sparse must not visit more than dense in {name}"
            );
        }
    }

    #[test]
    fn linear_fit_recovers_a_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let (slope, intercept, r2) = linear_fit(&x, &y);
        assert!((slope - 2.0).abs() < 1e-9);
        assert!((intercept - 1.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }
}
