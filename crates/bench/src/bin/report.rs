//! Regenerates every table and figure of the paper's evaluation (§4).
//!
//! ```text
//! report [--scale S] [--seed N] [--baseline] [--threads N] [SECTION...]
//! SECTION: table1 table2 table3 table4 table5 fig13 fig14 fig15 opts
//!          parallel incremental serve all
//! ```
//!
//! `--scale` shrinks every benchmark proportionally (default 0.1); pass
//! `--scale 1` for paper-sized programs. `--baseline` additionally runs
//! the full-CFG analysis and prints its time/memory comparison.
//! `--threads` selects the analysis front-end worker count (0 = all
//! available hardware threads). The `parallel` section (not part of
//! `all`) compares threads=1 against threads=N on the two largest
//! benchmarks and writes the measurements to `BENCH_parallel.json`.
//! The `incremental` section (not part of `all`) runs the optimizer with
//! incremental re-analysis off and on, cross-checks bit-identical output
//! programs, and writes the measurements to `BENCH_incremental.json`.
//! The `phases` section (not part of `all`) compares the chaotic FIFO
//! reference, the SCC-wave engine over dense per-node sets, and the
//! default SCC-wave engine over sparse def-use chains on the two largest
//! benchmarks, cross-checks bit-identical results at 1 and N workers for
//! both representations, and writes the measurements to
//! `BENCH_phases.json`.
//! The `serve` section (not part of `all`) starts an in-process
//! `spike-served` daemon, measures cold vs warm vs incremental-warm
//! request throughput at 1/4/8 concurrent clients, cross-checks that
//! daemon responses are byte-identical to the local library path, and
//! writes the measurements to `BENCH_serve.json`.
//! The `queries` section (not part of `all`) measures the demand-driven
//! query engine against the whole-program solve on gcc: per-routine cone
//! solve time over a deterministic routine sample, cross-checked
//! bit-identical to the dense solution slice, written to
//! `BENCH_query.json`.
//! The `pgo` section (not part of `all`) profiles all 16 benchmarks
//! under the simulator, re-optimizes each with its profile, and counts
//! the dynamic instructions both variants need to produce the same
//! output prefix; written to `BENCH_pgo.json`. It uses a fixed
//! calibrated shape (scale 20/routines, seed 1) rather than `--scale`,
//! matching the workspace PGO property tests.

use std::collections::BTreeSet;

use spike_bench::{linear_fit, BenchRun, DEFAULT_SEED};
use spike_sim::Outcome;
use spike_synth::{generate_executable, profiles, Suite};

fn main() {
    let mut scale = 0.1f64;
    let mut seed = DEFAULT_SEED;
    let mut with_baseline = false;
    let mut threads = 0usize;
    let mut sections: BTreeSet<String> = BTreeSet::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--baseline" => with_baseline = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a non-negative integer"));
            }
            "--help" | "-h" => {
                println!(
                    "report [--scale S] [--seed N] [--baseline] [--threads N] \
                     [table1|table2|table3|table4|table5|fig13|fig14|fig15|opts|parallel|\
                     incremental|phases|serve|serve_cluster|queries|pgo|all]"
                );
                return;
            }
            s if [
                "table1",
                "table2",
                "table3",
                "table4",
                "table5",
                "fig13",
                "fig14",
                "fig15",
                "opts",
                "ablate",
                "parallel",
                "incremental",
                "phases",
                "serve",
                "serve_cluster",
                "queries",
                "pgo",
                "all",
            ]
            .contains(&s) =>
            {
                sections.insert(s.to_string());
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    if sections.is_empty() || sections.contains("all") {
        for s in
            ["table1", "table2", "table3", "table4", "table5", "fig13", "fig14", "fig15", "opts"]
        {
            sections.insert(s.to_string());
        }
    }

    let want_runs = sections.iter().any(|s| {
        !matches!(
            s.as_str(),
            "table1"
                | "ablate"
                | "parallel"
                | "incremental"
                | "phases"
                | "serve"
                | "serve_cluster"
                | "queries"
                | "pgo"
        )
    });

    println!("# Spike interprocedural dataflow — evaluation report");
    println!("# scale = {scale}, seed = {seed:#x}\n");

    if sections.contains("table1") {
        table1();
    }

    let runs: Vec<BenchRun> = if want_runs {
        profiles()
            .iter()
            .map(|p| {
                eprintln!("measuring {} ...", p.name);
                BenchRun::measure(p, scale, seed, with_baseline, threads)
            })
            .collect()
    } else {
        Vec::new()
    };

    if sections.contains("table2") {
        table2(&runs, with_baseline);
    }
    if sections.contains("table3") {
        table3(&runs);
    }
    if sections.contains("table4") {
        table4(&runs);
    }
    if sections.contains("table5") {
        table5(&runs);
    }
    if sections.contains("fig13") {
        fig13(&runs);
    }
    if sections.contains("fig14") {
        fig_scaling(&runs, "Figure 14: total analysis time", |r| r.total_secs() * 1e3, "time (ms)");
    }
    if sections.contains("fig15") {
        fig_scaling(&runs, "Figure 15: analysis memory", |r| r.memory_mb(), "memory (MB)");
    }
    if sections.contains("opts") {
        opts_report(&runs, seed);
    }
    if sections.contains("ablate") {
        ablate(scale, seed);
    }
    if sections.contains("parallel") {
        parallel_report(scale, seed, threads);
    }
    if sections.contains("incremental") {
        incremental_report(scale, seed, threads);
    }
    if sections.contains("phases") {
        phases_report(scale, seed, threads);
    }
    if sections.contains("serve") {
        serve_report(scale, seed);
    }
    if sections.contains("serve_cluster") {
        serve_cluster_report(scale, seed);
    }
    if sections.contains("queries") {
        queries_report(scale, seed, threads);
    }
    if sections.contains("pgo") {
        pgo_report(threads);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn suite_of(s: Suite) -> &'static str {
    match s {
        Suite::SpecInt95 => "SPECint95",
        Suite::PcApp => "PC App",
    }
}

fn table1() {
    println!("## Table 1: PC application benchmarks\n");
    println!("{:<10} description", "app");
    for p in profiles().iter().filter(|p| p.suite == Suite::PcApp) {
        println!("{:<10} {}", p.name, p.description);
    }
    println!();
}

fn table2(runs: &[BenchRun], with_baseline: bool) {
    println!("## Table 2: benchmark size, dataflow analysis time and memory usage\n");
    println!(
        "{:<10} {:<10} {:>9} {:>13} {:>10} {:>11} {:>12}",
        "suite", "benchmark", "routines", "basic blocks", "instr (k)", "time (s)", "memory (MB)"
    );
    for r in runs {
        println!(
            "{:<10} {:<10} {:>9} {:>13} {:>10.1} {:>11.3} {:>12.2}",
            suite_of(r.profile.suite),
            r.profile.name,
            r.routines(),
            r.blocks(),
            r.instructions() as f64 / 1e3,
            r.total_secs(),
            r.memory_mb(),
        );
    }
    if with_baseline {
        println!("\n  (full-CFG baseline comparison)");
        println!(
            "{:<10} {:>13} {:>14} {:>13} {:>14}",
            "benchmark", "psg time (s)", "cfg time (s)", "psg mem (MB)", "cfg mem (MB)"
        );
        for r in runs {
            if let Some(b) = &r.baseline {
                println!(
                    "{:<10} {:>13.3} {:>14.3} {:>13.2} {:>14.2}",
                    r.profile.name,
                    r.total_secs(),
                    b.stats.total().as_secs_f64(),
                    r.memory_mb(),
                    b.stats.memory_bytes as f64 / 1e6,
                );
            }
        }
    }
    println!();
}

fn table3(runs: &[BenchRun]) {
    println!("## Table 3: benchmark characteristics influencing PSG size\n");
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>10} {:>11} {:>11}",
        "benchmark", "entr/rtn", "exit/rtn", "call/rtn", "branch/rtn", "nodes/rtn", "edges/rtn"
    );
    for r in runs {
        let n = r.routines() as f64;
        let cfgs = r.analysis.cfg.cfgs();
        let entrances: usize = cfgs.iter().map(|c| c.entries().len()).sum();
        let exits: usize = cfgs.iter().map(|c| c.exits().len()).sum();
        let calls: usize = cfgs.iter().map(|c| c.call_count()).sum();
        let branches: usize = cfgs.iter().map(|c| c.branch_count()).sum();
        let stats = r.analysis.psg.stats();
        println!(
            "{:<10} {:>10.2} {:>8.2} {:>8.2} {:>10.2} {:>11.2} {:>11.2}",
            r.profile.name,
            entrances as f64 / n,
            exits as f64 / n,
            calls as f64 / n,
            branches as f64 / n,
            stats.nodes as f64 / n,
            stats.edges as f64 / n,
        );
    }
    println!();
}

fn table4(runs: &[BenchRun]) {
    println!("## Table 4: PSG edge reduction provided by branch nodes\n");
    println!(
        "{:<10} {:>16} {:>15} {:>12} {:>12}",
        "benchmark", "edge reduction", "node increase", "edges with", "edges w/o"
    );
    for r in runs {
        println!(
            "{:<10} {:>15.1}% {:>14.1}% {:>12} {:>12}",
            r.profile.name,
            r.edge_reduction_pct(),
            r.node_increase_pct(),
            r.analysis.psg.stats().edges,
            r.no_branch_nodes.psg.stats().edges,
        );
    }
    println!();
}

fn table5(runs: &[BenchRun]) {
    println!("## Table 5: PSG nodes and edges vs CFG basic blocks and arcs\n");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>10} {:>12} {:>11}",
        "benchmark",
        "psg nodes",
        "psg edges",
        "basic blocks",
        "cfg arcs",
        "nodes/block",
        "edges/arc"
    );
    for r in runs {
        let stats = r.analysis.psg.stats();
        let counts = r.analysis.cfg.counts();
        println!(
            "{:<10} {:>10} {:>10} {:>12} {:>10} {:>12.2} {:>11.2}",
            r.profile.name,
            stats.nodes,
            stats.edges,
            counts.basic_blocks,
            counts.total_arcs(),
            stats.nodes as f64 / counts.basic_blocks as f64,
            stats.edges as f64 / counts.total_arcs() as f64,
        );
    }
    let nodes: usize = runs.iter().map(|r| r.analysis.psg.stats().nodes).sum();
    let blocks: usize = runs.iter().map(|r| r.analysis.cfg.counts().basic_blocks).sum();
    let edges: usize = runs.iter().map(|r| r.analysis.psg.stats().edges).sum();
    let arcs: usize = runs.iter().map(|r| r.analysis.cfg.counts().total_arcs()).sum();
    println!(
        "\n  average: PSG has {:.0}% fewer nodes than CFG blocks, {:.0}% fewer edges than CFG arcs",
        100.0 * (1.0 - nodes as f64 / blocks as f64),
        100.0 * (1.0 - edges as f64 / arcs as f64),
    );
    println!();
}

fn fig13(runs: &[BenchRun]) {
    println!("## Figure 13: fraction of total time per analysis stage\n");
    println!(
        "{:<10} {:>10} {:>8} {:>10} {:>9} {:>9}",
        "benchmark", "cfg build", "init", "psg build", "phase 1", "phase 2"
    );
    for r in runs {
        let s = &r.analysis.stats;
        let total = s.total().as_secs_f64().max(1e-12);
        let pct = |d: std::time::Duration| 100.0 * d.as_secs_f64() / total;
        println!(
            "{:<10} {:>9.1}% {:>7.1}% {:>9.1}% {:>8.1}% {:>8.1}%",
            r.profile.name,
            pct(s.cfg_build),
            pct(s.init),
            pct(s.psg_build),
            pct(s.phase1),
            pct(s.phase2),
        );
    }
    println!();
}

fn fig_scaling(runs: &[BenchRun], title: &str, metric: impl Fn(&BenchRun) -> f64, unit: &str) {
    println!("## {title} as a function of program size\n");
    println!(
        "{:<10} {:>9} {:>13} {:>10} {:>14}",
        "benchmark", "routines", "basic blocks", "instr (k)", unit
    );
    let mut sorted: Vec<&BenchRun> = runs.iter().collect();
    sorted.sort_by_key(|r| r.blocks());
    for r in &sorted {
        println!(
            "{:<10} {:>9} {:>13} {:>10.1} {:>14.3}",
            r.profile.name,
            r.routines(),
            r.blocks(),
            r.instructions() as f64 / 1e3,
            metric(r),
        );
    }
    for (label, xs) in [
        ("routines", sorted.iter().map(|r| r.routines() as f64).collect::<Vec<_>>()),
        ("basic blocks", sorted.iter().map(|r| r.blocks() as f64).collect()),
        ("instructions", sorted.iter().map(|r| r.instructions() as f64).collect()),
    ] {
        let ys: Vec<f64> = sorted.iter().map(|r| metric(r)).collect();
        let (slope, _, r2) = linear_fit(&xs, &ys);
        println!("  linear fit vs {label}: slope {slope:.3e} {unit}/unit, R² = {r2:.3}");
    }
    println!();
}

/// Ablation of the §3.4 callee-saved filter: how much larger the
/// caller-visible summaries get when definitions and uses of saved
/// registers are allowed to leak to call sites.
fn ablate(scale: f64, seed: u64) {
    use spike_core::{analyze_with, AnalysisOptions};

    println!("## Ablation: §3.4 callee-saved register filtering\n");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "benchmark", "killed (on)", "killed (off)", "used (on)", "used (off)"
    );
    for name in ["compress", "li", "gcc", "texim"] {
        let p = spike_synth::profile(name).expect("known benchmark");
        let program = spike_synth::generate(&p, scale, seed);
        let on = analyze_with(&program, &AnalysisOptions::default());
        let off = analyze_with(
            &program,
            &AnalysisOptions { callee_saved_filter: false, ..AnalysisOptions::default() },
        );
        let avg = |a: &spike_core::Analysis, f: fn(&spike_core::RoutineSummary) -> f64| {
            let total: f64 = a.summary.routines().iter().map(f).sum();
            total / a.summary.routines().len() as f64
        };
        let killed = |s: &spike_core::RoutineSummary| {
            s.call_killed.iter().map(|k| k.len()).sum::<usize>() as f64
                / s.call_killed.len().max(1) as f64
        };
        let used = |s: &spike_core::RoutineSummary| {
            s.call_used.iter().map(|k| k.len()).sum::<usize>() as f64
                / s.call_used.len().max(1) as f64
        };
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            name,
            avg(&on, killed),
            avg(&off, killed),
            avg(&on, used),
            avg(&off, used),
        );
    }
    println!(
        "\n  smaller call-killed/call-used sets mean more registers provably\n  \
         survive calls — the enabler for Figure 1(c)/(d).\n"
    );
}

/// Compares the per-routine analysis front-end at `threads = 1` against
/// `threads = N` on the two largest benchmarks, cross-checks that both
/// settings produce bit-identical results, and records the measurements
/// in `BENCH_parallel.json`.
fn parallel_report(scale: f64, seed: u64, threads: usize) {
    use spike_core::{analyze_with, Analysis, AnalysisOptions, AnalysisStats};

    let requested = spike_core::parallel::resolve_threads(threads);
    println!("## Parallel front-end: threads=1 vs threads={requested}\n");
    println!(
        "{:<10} {:>9} {:>14} {:>14} {:>9} {:>12}",
        "benchmark", "routines", "front 1t (ms)", "front Nt (ms)", "speedup", "workers used"
    );

    let front_secs = |s: &AnalysisStats| (s.cfg_build + s.init + s.psg_build).as_secs_f64();
    let mut rows = Vec::new();
    for name in ["sqlservr", "winword"] {
        let p = spike_synth::profile(name).expect("known benchmark");
        eprintln!("measuring {name} ...");
        let program = spike_synth::generate(&p, scale, seed);

        // Best of three per setting, to damp scheduler noise.
        let measure = |t: usize| -> Analysis {
            let options = AnalysisOptions { threads: t, ..AnalysisOptions::default() };
            let mut best: Option<Analysis> = None;
            for _ in 0..3 {
                let a = analyze_with(&program, &options);
                if best.as_ref().is_none_or(|b| front_secs(&a.stats) < front_secs(&b.stats)) {
                    best = Some(a);
                }
            }
            best.expect("three measurement iterations ran")
        };
        let serial = measure(1);
        let parallel = measure(requested);

        // The determinism contract, checked on real workloads: identical
        // summaries and identical deterministic memory accounting.
        for (rid, r) in program.iter() {
            assert_eq!(
                serial.summary.routine(rid),
                parallel.summary.routine(rid),
                "threads=1 vs threads={requested} summary mismatch for {}",
                r.name()
            );
        }
        assert_eq!(serial.stats.memory_bytes, parallel.stats.memory_bytes);
        assert_eq!(serial.psg.stats(), parallel.psg.stats());

        let f1 = front_secs(&serial.stats);
        let fn_ = front_secs(&parallel.stats);
        println!(
            "{:<10} {:>9} {:>14.2} {:>14.2} {:>8.2}x {:>12}",
            name,
            program.routines().len(),
            f1 * 1e3,
            fn_ * 1e3,
            f1 / fn_,
            parallel.stats.front_end_workers,
        );
        rows.push(format!(
            "    {{\"benchmark\": \"{name}\", \"routines\": {}, \"scale\": {scale}, \
             \"front_end_secs_threads1\": {f1:.6}, \"front_end_secs_threadsN\": {fn_:.6}, \
             \"total_secs_threads1\": {:.6}, \"total_secs_threadsN\": {:.6}, \
             \"speedup_front_end\": {:.3}, \"workers_used\": {}, \
             \"results_identical\": true}}",
            program.routines().len(),
            serial.stats.total().as_secs_f64(),
            parallel.stats.total().as_secs_f64(),
            f1 / fn_,
            parallel.stats.front_end_workers,
        ));
    }

    let json = format!(
        "{{\n  \"requested_threads\": {requested},\n  \
         \"available_parallelism\": {},\n  \"seed\": {seed},\n  \"runs\": [\n{}\n  ]\n}}\n",
        spike_core::parallel::resolve_threads(0),
        rows.join(",\n"),
    );
    match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => println!("\n  wrote BENCH_parallel.json\n"),
        Err(e) => eprintln!("cannot write BENCH_parallel.json: {e}"),
    }
}

/// Runs the full optimizer pipeline with incremental re-analysis disabled
/// and enabled, cross-checks that both modes emit bit-identical programs
/// and identical optimization counts, and records the measurements in
/// `BENCH_incremental.json`.
fn incremental_report(scale: f64, seed: u64, threads: usize) {
    use spike_core::AnalysisOptions;
    use spike_opt::{optimize_with, OptOptions, OptReport};
    use spike_program::Program;

    println!("## Incremental re-analysis: from-scratch vs cached pass manager\n");
    println!(
        "{:<10} {:>9} {:>14} {:>14} {:>9} {:>12} {:>8}",
        "benchmark", "routines", "scratch (ms)", "incr (ms)", "speedup", "reanalyzed", "reused"
    );

    let mut rows = Vec::new();
    for name in ["compress", "li", "gcc", "texim"] {
        let p = spike_synth::profile(name).expect("known benchmark");
        eprintln!("measuring {name} ...");
        let program = spike_synth::generate(&p, scale, seed);

        // Best of three per setting, to damp scheduler noise.
        let measure = |incremental: bool| -> (Program, OptReport, f64) {
            let options = OptOptions {
                analysis: AnalysisOptions { threads, ..AnalysisOptions::default() },
                incremental,
                ..OptOptions::default()
            };
            let mut best: Option<(Program, OptReport, f64)> = None;
            for _ in 0..3 {
                let t = std::time::Instant::now();
                let (q, rep) = optimize_with(&program, &options).expect("optimization succeeds");
                let secs = t.elapsed().as_secs_f64();
                if best.as_ref().is_none_or(|(_, _, b)| secs < *b) {
                    best = Some((q, rep, secs));
                }
            }
            best.expect("three measurement iterations ran")
        };
        let (scratch_prog, scratch_rep, scratch_secs) = measure(false);
        let (incr_prog, incr_rep, incr_secs) = measure(true);

        // The equivalence contract, checked on real workloads: the cached
        // pass manager must emit the same program and the same counts as
        // three from-scratch analysis runs.
        assert_eq!(scratch_prog, incr_prog, "incremental output differs for {name}");
        assert_eq!(scratch_rep.instructions_after, incr_rep.instructions_after);
        assert_eq!(scratch_rep.dead_deleted, incr_rep.dead_deleted);
        assert_eq!(scratch_rep.spill_pairs_removed, incr_rep.spill_pairs_removed);
        assert_eq!(scratch_rep.registers_reallocated, incr_rep.registers_reallocated);
        assert_eq!(scratch_rep.routines_reused, 0, "scratch mode must not reuse");

        println!(
            "{:<10} {:>9} {:>14.2} {:>14.2} {:>8.2}x {:>12} {:>8}",
            name,
            program.routines().len(),
            scratch_secs * 1e3,
            incr_secs * 1e3,
            scratch_secs / incr_secs,
            incr_rep.routines_reanalyzed,
            incr_rep.routines_reused,
        );
        rows.push(format!(
            "    {{\"benchmark\": \"{name}\", \"routines\": {}, \"scale\": {scale}, \
             \"opt_secs_scratch\": {scratch_secs:.6}, \"opt_secs_incremental\": {incr_secs:.6}, \
             \"speedup\": {:.3}, \"rounds\": {}, \
             \"routines_reanalyzed\": {}, \"routines_reused\": {}, \
             \"instructions_removed\": {}, \"results_identical\": true}}",
            program.routines().len(),
            scratch_secs / incr_secs,
            incr_rep.rounds,
            incr_rep.routines_reanalyzed,
            incr_rep.routines_reused,
            incr_rep.instructions_before - incr_rep.instructions_after,
        ));
    }

    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"seed\": {seed},\n  \"runs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    match std::fs::write("BENCH_incremental.json", &json) {
        Ok(()) => println!("\n  wrote BENCH_incremental.json\n"),
        Err(e) => eprintln!("cannot write BENCH_incremental.json: {e}"),
    }
}

/// Compares the chaotic FIFO reference, the SCC-wave schedule solving
/// dense per-node sets, and the SCC-wave schedule solving contracted
/// sparse def-use chains (the default). Cross-checks that all three
/// engines — and both SCC-wave representations at 1 and N wave workers —
/// produce bit-identical results, and records the visit reductions in
/// `BENCH_phases.json`.
fn phases_report(scale: f64, seed: u64, threads: usize) {
    use spike_core::{analyze_with, AnalysisOptions, Representation, Scheduler};

    let requested = spike_core::parallel::resolve_threads(threads);
    println!("## Fixpoint scheduling: FIFO vs SCC-wave, dense vs sparse chains\n");
    println!(
        "{:<10} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>8} {:>8}",
        "benchmark",
        "routines",
        "fifo p1",
        "fifo p2",
        "dense p1",
        "dense p2",
        "sparse p1",
        "sparse p2",
        "sched-x",
        "sparse-x"
    );

    let mut rows = Vec::new();
    for name in ["gcc", "sqlservr"] {
        let p = spike_synth::profile(name).expect("known benchmark");
        eprintln!("measuring {name} ...");
        let program = spike_synth::generate(&p, scale, seed);

        let run = |scheduler: Scheduler, representation: Representation, t: usize| {
            analyze_with(
                &program,
                &AnalysisOptions {
                    scheduler,
                    representation,
                    threads: t,
                    ..AnalysisOptions::default()
                },
            )
        };
        let fifo = run(Scheduler::Fifo, Representation::Dense, 1);
        let serial = run(Scheduler::SccWave, Representation::Dense, 1);
        let wide = run(Scheduler::SccWave, Representation::Dense, requested);
        let sparse = run(Scheduler::SccWave, Representation::Sparse, 1);
        let sparse_wide = run(Scheduler::SccWave, Representation::Sparse, requested);

        // The determinism contract, checked on real workloads: scheduler
        // and representation are pure strategy, so summaries, the PSG
        // solution and the deterministic memory accounting must be
        // bit-identical whichever engine ran and however many workers
        // solved the waves.
        for (rid, r) in program.iter() {
            assert_eq!(
                fifo.summary.routine(rid),
                serial.summary.routine(rid),
                "fifo vs scheduled summary mismatch for {}",
                r.name()
            );
            assert_eq!(
                serial.summary.routine(rid),
                wide.summary.routine(rid),
                "threads=1 vs threads={requested} summary mismatch for {}",
                r.name()
            );
            assert_eq!(
                serial.summary.routine(rid),
                sparse.summary.routine(rid),
                "dense vs sparse summary mismatch for {}",
                r.name()
            );
        }
        assert_eq!(fifo.psg, serial.psg);
        assert_eq!(serial.psg, wide.psg);
        assert_eq!(serial.psg, sparse.psg, "dense vs sparse PSG mismatch");
        assert_eq!(serial.psg, sparse_wide.psg, "dense vs wide sparse PSG mismatch");
        assert_eq!(fifo.stats.memory_bytes, serial.stats.memory_bytes);
        assert_eq!(serial.stats.memory_bytes, wide.stats.memory_bytes);
        assert_eq!(serial.stats.memory_bytes, sparse.stats.memory_bytes);
        // Wave workers partition the schedule rather than race for it,
        // so the effort is also deterministic across worker counts, for
        // both representations.
        assert_eq!(serial.stats.phase1_visits, wide.stats.phase1_visits);
        assert_eq!(serial.stats.phase2_visits, wide.stats.phase2_visits);
        assert_eq!(serial.stats.waves, wide.stats.waves);
        assert_eq!(sparse.stats.phase1_visits, sparse_wide.stats.phase1_visits);
        assert_eq!(sparse.stats.phase2_visits, sparse_wide.stats.phase2_visits);
        // The stack-slot dataflows ride the same schedule and are pure
        // strategy-independent facts: identical results and effort
        // whichever register engine ran alongside them.
        assert_eq!(fifo.stack, serial.stack, "fifo vs scheduled stack mismatch");
        assert_eq!(serial.stack, sparse.stack, "dense vs sparse stack mismatch");
        assert_eq!(serial.stack, wide.stack, "serial vs wide stack mismatch");
        assert_eq!(serial.stats.stack_forward_visits, wide.stats.stack_forward_visits);
        assert_eq!(serial.stats.stack_backward_visits, wide.stats.stack_backward_visits);

        let fifo_total = fifo.stats.phase1_visits + fifo.stats.phase2_visits;
        let sched_total = serial.stats.phase1_visits + serial.stats.phase2_visits;
        let sparse_total = sparse.stats.phase1_visits + sparse.stats.phase2_visits;
        let reduction = fifo_total as f64 / sched_total.max(1) as f64;
        let sparse_reduction = sched_total as f64 / sparse_total.max(1) as f64;
        println!(
            "{:<10} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>7.2}x {:>7.2}x",
            name,
            program.routines().len(),
            fifo.stats.phase1_visits,
            fifo.stats.phase2_visits,
            serial.stats.phase1_visits,
            serial.stats.phase2_visits,
            sparse.stats.phase1_visits,
            sparse.stats.phase2_visits,
            reduction,
            sparse_reduction,
        );
        rows.push(format!(
            "    {{\"benchmark\": \"{name}\", \"routines\": {}, \"scale\": {scale}, \
             \"fifo_phase1_visits\": {}, \"fifo_phase2_visits\": {}, \
             \"sched_phase1_visits\": {}, \"sched_phase2_visits\": {}, \
             \"sparse_phase1_visits\": {}, \"sparse_phase2_visits\": {}, \
             \"slot_forward_visits\": {}, \"slot_backward_visits\": {}, \
             \"visit_reduction\": {reduction:.3}, \
             \"sparse_reduction\": {sparse_reduction:.3}, \"waves\": {}, \
             \"phase_workers\": {}, \"results_identical\": true}}",
            program.routines().len(),
            fifo.stats.phase1_visits,
            fifo.stats.phase2_visits,
            serial.stats.phase1_visits,
            serial.stats.phase2_visits,
            sparse.stats.phase1_visits,
            sparse.stats.phase2_visits,
            serial.stats.stack_forward_visits,
            serial.stats.stack_backward_visits,
            wide.stats.waves,
            wide.stats.phase_workers,
        ));
    }

    let json = format!(
        "{{\n  \"requested_threads\": {requested},\n  \
         \"available_parallelism\": {},\n  \"seed\": {seed},\n  \"runs\": [\n{}\n  ]\n}}\n",
        spike_core::parallel::resolve_threads(0),
        rows.join(",\n"),
    );
    match std::fs::write("BENCH_phases.json", &json) {
        Ok(()) => println!("\n  wrote BENCH_phases.json\n"),
        Err(e) => eprintln!("cannot write BENCH_phases.json: {e}"),
    }
}

/// Measures the demand-driven query engine on gcc: the one-time engine
/// build, then the marginal cone solve for `live-at-entry` on each of a
/// deterministic sample of routines, each cross-checked bit-identical to
/// the corresponding slice of a whole-program solve. Writes the
/// per-query latencies and the median speedup over the dense solve to
/// `BENCH_query.json`.
fn queries_report(scale: f64, seed: u64, threads: usize) {
    use spike_core::{analyze_with, AnalysisOptions, Query, QueryAnswer, QueryEngine};
    use spike_program::RoutineId;
    use std::time::Instant;

    const SAMPLES: usize = 24;

    println!("## Demand-driven queries: per-routine cone solve vs whole-program solve\n");

    let p = spike_synth::profile("gcc").expect("known benchmark");
    eprintln!("measuring gcc ...");
    let program = spike_synth::generate(&p, scale, seed);
    let n = program.routines().len();
    let options = AnalysisOptions { threads, ..AnalysisOptions::default() };

    // Median of three for the two fixed costs, to damp scheduler noise.
    let median3 = |mut f: Box<dyn FnMut() -> f64>| -> f64 {
        let mut t = [f(), f(), f()];
        t.sort_by(f64::total_cmp);
        t[1]
    };
    let full = analyze_with(&program, &options);
    let full_solve_secs = {
        let (program, options) = (&program, &options);
        median3(Box::new(move || {
            let t = Instant::now();
            std::hint::black_box(analyze_with(program, options));
            t.elapsed().as_secs_f64()
        }))
    };
    let engine_build_secs = {
        let (program, options) = (&program, &options);
        median3(Box::new(move || {
            let t = Instant::now();
            std::hint::black_box(QueryEngine::new(program, options));
            t.elapsed().as_secs_f64()
        }))
    };

    // A deterministic seeded sample of distinct routines, spread by a
    // golden-ratio stride so cones of all depths are represented.
    let mut sample: Vec<usize> = Vec::new();
    let mut x = seed | 1;
    while sample.len() < SAMPLES.min(n) {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let i = (x >> 33) as usize % n;
        if !sample.contains(&i) {
            sample.push(i);
        }
    }
    sample.sort_unstable();

    println!(
        "  gcc: {n} routines, full solve {:.2} ms, engine build {:.2} ms\n",
        full_solve_secs * 1e3,
        engine_build_secs * 1e3
    );
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>8} {:>12} {:>9}",
        "routine", "cone rtn", "p1 comps", "p2 comps", "visits", "query (ms)", "speedup"
    );

    let mut rows = Vec::new();
    let mut marginals = Vec::new();
    for &i in &sample {
        let rid = RoutineId::from_index(i);
        // A fresh engine per routine isolates one cold cone: memoization
        // across sampled routines would understate the marginal cost.
        let mut engine = QueryEngine::new(&program, &options);
        let t = Instant::now();
        let (answer, stats) = engine.query(&Query::LiveAtEntry(rid));
        let query_secs = t.elapsed().as_secs_f64();

        // The exactness contract, checked on the measured workload: the
        // demand answer is the bit-identical slice of the dense solve.
        let s = full.summary.routine(rid);
        let QueryAnswer::LiveAtEntry { live_at_entry, live_at_exit } = answer else {
            panic!("liveness query must return a liveness answer");
        };
        assert_eq!(live_at_entry, s.live_at_entry, "query diverged for routine {i}");
        assert_eq!(live_at_exit, s.live_at_exit, "query diverged for routine {i}");

        let speedup = full_solve_secs / query_secs;
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>8} {:>12.3} {:>8.1}x",
            i,
            stats.cone_routines,
            stats.phase1_cone_components,
            stats.phase2_cone_components,
            stats.visits,
            query_secs * 1e3,
            speedup,
        );
        marginals.push(query_secs);
        rows.push(format!(
            "    {{\"routine\": {i}, \"cone_routines\": {}, \
             \"phase1_cone_components\": {}, \"phase2_cone_components\": {}, \
             \"visits\": {}, \"query_secs\": {query_secs:.9}, \"speedup\": {speedup:.3}}}",
            stats.cone_routines,
            stats.phase1_cone_components,
            stats.phase2_cone_components,
            stats.visits,
        ));
    }

    marginals.sort_by(f64::total_cmp);
    let median_query_secs = marginals[marginals.len() / 2];
    let speedup_median = full_solve_secs / median_query_secs;
    println!(
        "\n  median query {:.3} ms vs full solve {:.2} ms: {speedup_median:.1}x \
         (engine build, paid once per image: {:.2} ms)\n",
        median_query_secs * 1e3,
        full_solve_secs * 1e3,
        engine_build_secs * 1e3,
    );

    let json = format!(
        "{{\n  \"benchmark\": \"gcc\",\n  \"scale\": {scale},\n  \"seed\": {seed},\n  \
         \"threads\": {threads},\n  \"routines\": {n},\n  \
         \"full_solve_secs\": {full_solve_secs:.9},\n  \
         \"engine_build_secs\": {engine_build_secs:.9},\n  \
         \"median_query_secs\": {median_query_secs:.9},\n  \
         \"speedup_median\": {speedup_median:.3},\n  \
         \"results_identical\": true,\n  \"queries\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    match std::fs::write("BENCH_query.json", &json) {
        Ok(()) => println!("\n  wrote BENCH_query.json\n"),
        Err(e) => eprintln!("cannot write BENCH_query.json: {e}"),
    }
}

fn opts_report(runs: &[BenchRun], seed: u64) {
    println!("## Optimization impact (Figure 1 motivation)\n");
    println!("static effect on profile benchmarks (instructions removed):\n");
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "benchmark", "before", "after", "dead", "spills", "reallocs"
    );
    for r in runs.iter().take(4) {
        match spike_opt::optimize(&r.program) {
            Ok((_, rep)) => println!(
                "{:<10} {:>8} {:>8} {:>9} {:>9} {:>9}",
                r.profile.name,
                rep.instructions_before,
                rep.instructions_after,
                rep.dead_deleted,
                rep.spill_pairs_removed,
                rep.registers_reallocated,
            ),
            Err(e) => println!("{:<10} optimization failed: {e}", r.profile.name),
        }
    }

    println!("\ndynamic effect on executable programs (simulated steps):\n");
    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>14} {:>13}",
        "program", "steps before", "steps after", "speedup", "overhead before", "after"
    );
    let mut total_before = 0u64;
    let mut total_after = 0u64;
    let mut ovh_before = 0u64;
    let mut ovh_after = 0u64;
    for i in 0..8u64 {
        let p = generate_executable(seed.wrapping_add(i), 12);
        let (q, _) = spike_opt::optimize(&p).expect("optimization succeeds");
        let (out0, prof0) = spike_sim::run_profiled(&p, 10_000_000);
        let (out1, prof1) = spike_sim::run_profiled(&q, 10_000_000);
        let (Outcome::Halted { steps: s0, output: o0 }, Outcome::Halted { steps: s1, output: o1 }) =
            (out0, out1)
        else {
            panic!("generated executables must halt");
        };
        assert_eq!(o0, o1, "optimization must preserve behaviour");
        total_before += s0;
        total_after += s1;
        ovh_before += prof0.call_overhead_steps;
        ovh_after += prof1.call_overhead_steps;
        println!(
            "exec-{i:<3} {s0:>12} {s1:>12} {:>8.1}% {:>13.1}% {:>12.1}%",
            100.0 * (s0 - s1) as f64 / s0 as f64,
            100.0 * prof0.overhead_fraction(),
            100.0 * prof1.overhead_fraction(),
        );
    }
    println!(
        "\n  total: {total_before} -> {total_after} steps ({:.1}% fewer); \
         call-overhead instructions {ovh_before} -> {ovh_after}\n  \
         (the paper's §1 motivation: call overhead is up to 16% of runtime;\n  \
         Figure 1(c)/(d) remove exactly these instructions)\n",
        100.0 * (total_before - total_after) as f64 / total_before as f64
    );
}

/// Starts an in-process `spike-served`, drives it with 1/4/8 concurrent
/// clients over three request mixes — *cold* (every image new), *warm*
/// (one image re-submitted), *incremental-warm* (small edits of a cached
/// image) — cross-checks that daemon responses are byte-identical to the
/// local library path, and records requests/sec in `BENCH_serve.json`.
fn serve_report(scale: f64, seed: u64) {
    use spike_core::AnalysisOptions;
    use spike_program::Rewriter;
    use spike_serve::{client, render, Command, Endpoint, Request, ServeOptions, Server};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    println!("## Service throughput: cold vs warm vs incremental-warm requests\n");
    println!(
        "{:<10} {:>7} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "benchmark", "clients", "cold r/s", "warm r/s", "incr r/s", "warm x", "incr x"
    );

    let analyze = || Command::Analyze { summaries: false, routine: None };
    let request = |image_name: &str| Request {
        profile_len: 0,
        cmd: analyze(),
        image_name: image_name.to_string(),
        deadline_ms: None,
    };

    // Drives `images` through the daemon from `clients` threads, checking
    // every response succeeded; returns requests/sec.
    let drive = |endpoint: &Endpoint, images: &[Arc<Vec<u8>>], clients: usize| -> f64 {
        let next = AtomicUsize::new(0);
        let t = std::time::Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..clients {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(image) = images.get(i) else { break };
                    let (r, _) = client::request(endpoint, &request("img"), image)
                        .expect("daemon round-trip");
                    assert_eq!(r.exit, 0, "request {i} failed: {:?}", r.error);
                });
            }
        });
        images.len() as f64 / t.elapsed().as_secs_f64()
    };

    let mut rows = Vec::new();
    for name in ["compress", "li", "gcc"] {
        let p = spike_synth::profile(name).expect("known benchmark");
        eprintln!("measuring {name} ...");
        let base = spike_synth::generate(&p, scale, seed);
        let base_image = Arc::new(base.to_image());

        // The local-path report the daemon must reproduce byte-for-byte.
        let expected = {
            let analysis = spike_core::analyze_with(&base, &AnalysisOptions::default());
            render::analyze_report("img", &base, &analysis, false, None)
                .expect("base program renders")
        };

        // Single-instruction edits of `base`, chained so each variant
        // diffs against a cached near-duplicate.
        let variants: Vec<Arc<Vec<u8>>> = {
            let mut out = Vec::new();
            let mut current = base.clone();
            let ids: Vec<_> = base.iter().map(|(id, _)| id).collect();
            for rid in ids {
                if out.len() == 16 {
                    break;
                }
                let addr = current.routine(rid).addr();
                if let Ok((q, _)) = Rewriter::new(&current).delete(addr).finish() {
                    out.push(Arc::new(q.to_image()));
                    current = q;
                }
            }
            out
        };

        for clients in [1usize, 4, 8] {
            // A fresh daemon per cell: clean cache, clean counters.
            let options = ServeOptions {
                tcp: Some("127.0.0.1:0".into()),
                workers: clients.max(2),
                analysis_threads: 1,
                ..ServeOptions::default()
            };
            let server = Server::start(&options).expect("daemon starts");
            let endpoint = Endpoint::Tcp(server.tcp_addr().expect("tcp bound").to_string());

            // Cold: every request is a distinct, never-seen image.
            let cold_images: Vec<Arc<Vec<u8>>> = (0..clients.max(2) * 2)
                .map(|i| {
                    let s = seed ^ (0x5ED + (clients * 131 + i) as u64);
                    Arc::new(spike_synth::generate(&p, scale, s).to_image())
                })
                .collect();
            let cold_rps = drive(&endpoint, &cold_images, clients);

            // Warm: prime once, then every request hits the cache.
            let (r, _) = client::request(&endpoint, &request("img"), &base_image)
                .expect("priming round-trip");
            assert_eq!(r.exit, 0, "priming failed: {:?}", r.error);
            let byte_identical = r.stdout == expected;
            assert!(byte_identical, "daemon analyze report diverged from the local path");
            let warm_images: Vec<Arc<Vec<u8>>> =
                (0..clients.max(2) * 8).map(|_| Arc::clone(&base_image)).collect();
            let warm_rps = drive(&endpoint, &warm_images, clients);

            // Incremental-warm: small edits of the (now cached) base.
            let incr_rps = drive(&endpoint, &variants, clients);
            let (stats, _) = client::request(
                &endpoint,
                &Request {
                    cmd: Command::Stats,
                    image_name: String::new(),
                    deadline_ms: None,
                    profile_len: 0,
                },
                &[],
            )
            .expect("stats round-trip");
            let stats = spike_core::json::Json::parse(&stats.stdout).expect("stats is JSON");
            let incremental_hits = stats
                .get("cache")
                .and_then(|c| c.get("incremental_warm"))
                .and_then(spike_core::json::Json::as_u64)
                .unwrap_or(0);

            let (_, _) = client::request(
                &endpoint,
                &Request {
                    cmd: Command::Shutdown,
                    image_name: String::new(),
                    deadline_ms: None,
                    profile_len: 0,
                },
                &[],
            )
            .expect("shutdown round-trip");
            server.join();

            println!(
                "{:<10} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>8.1}x {:>8.1}x",
                name,
                clients,
                cold_rps,
                warm_rps,
                incr_rps,
                warm_rps / cold_rps,
                incr_rps / cold_rps,
            );
            rows.push(format!(
                "    {{\"benchmark\": \"{name}\", \"scale\": {scale}, \"clients\": {clients}, \
                 \"cold_rps\": {cold_rps:.3}, \"warm_rps\": {warm_rps:.3}, \
                 \"incremental_rps\": {incr_rps:.3}, \
                 \"warm_speedup\": {:.3}, \"incremental_speedup\": {:.3}, \
                 \"incremental_hits\": {incremental_hits}, \
                 \"byte_identical\": {byte_identical}}}",
                warm_rps / cold_rps,
                incr_rps / cold_rps,
            ));
        }
    }

    let runs = spike_core::json::Json::parse(&format!("[{}]", rows.join(",")))
        .expect("bench rows are valid JSON");
    update_bench_serve(vec![("seed", spike_core::json::Json::Int(seed as i64)), ("runs", runs)]);
}

/// Rewrites `BENCH_serve.json`, replacing only the keys in `updates`
/// and preserving everything else the file already holds — the `serve`
/// section owns `seed`/`runs`, the `serve_cluster` section owns
/// `loadgen`/`cluster`, and either can run alone.
fn update_bench_serve(updates: Vec<(&'static str, spike_core::json::Json)>) {
    use spike_core::json::Json;
    let mut members: Vec<(String, Json)> = match std::fs::read_to_string("BENCH_serve.json") {
        Ok(text) => match Json::parse(&text) {
            Ok(Json::Obj(members)) => members,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    for (key, value) in updates {
        match members.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => members.push((key.to_string(), value)),
        }
    }
    members.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (key, value)) in members.iter().enumerate() {
        out.push_str("  \"");
        out.push_str(key);
        out.push_str("\": ");
        match value {
            // One element per line for arrays of rows, compact otherwise.
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (j, item) in items.iter().enumerate() {
                    out.push_str("    ");
                    item.write(&mut out);
                    if j + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str("  ]");
            }
            other => other.write(&mut out),
        }
        if i + 1 < members.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");
    match std::fs::write("BENCH_serve.json", &out) {
        Ok(()) => println!("\n  wrote BENCH_serve.json\n"),
        Err(e) => eprintln!("cannot write BENCH_serve.json: {e}"),
    }
}

/// Fleet-scale serving. Three measurements, merged into
/// `BENCH_serve.json` as the `loadgen` and `cluster` keys:
///
/// 1. **10k concurrent connections** against one event-driven instance.
///    The daemon runs as a *separate process* (`spike-served`, found
///    next to this binary) because each side holds one file descriptor
///    per connection; latency percentiles come from the in-process
///    load generator.
/// 2. **Cold start vs warm restart**: the same request set served by a
///    fresh daemon (every image analyzed) and by a restart from the
///    snapshot the first daemon wrote when it drained (every image a
///    cache hit).
/// 3. **A 3-shard cluster behind the router**: every routed response is
///    cross-checked byte-for-byte against the local library path, one
///    shard is killed mid-run and restarted warm from its snapshot on
///    the same port, and per-shard hit rates are recorded.
fn serve_cluster_report(scale: f64, seed: u64) {
    use spike_core::json::Json;
    use spike_core::AnalysisOptions;
    use spike_serve::{
        client, loadgen, render, Command, Endpoint, Request, Ring, Router, RouterOptions,
        ServeOptions, Server,
    };
    use std::time::{Duration, Instant};

    let analyze = || Command::Analyze { summaries: false, routine: None };
    let request = |name: &str| Request {
        cmd: analyze(),
        image_name: name.to_string(),
        deadline_ms: None,
        profile_len: 0,
    };
    let blobless = |cmd: Command| Request {
        cmd,
        image_name: String::new(),
        deadline_ms: None,
        profile_len: 0,
    };
    let shutdown_cmd = |endpoint: &Endpoint| {
        let (r, _) = client::request(endpoint, &blobless(Command::Shutdown), &[])
            .expect("shutdown round trip");
        assert_eq!(r.exit, 0, "{:?}", r.error);
    };
    let stats_of = |endpoint: &Endpoint| -> Json {
        let (r, _) =
            client::request(endpoint, &blobless(Command::Stats), &[]).expect("stats round trip");
        Json::parse(&r.stdout).expect("stats is JSON")
    };
    let counter = |s: &Json, group: &str, name: &str| {
        s.get(group).and_then(|g| g.get(name)).and_then(Json::as_u64).unwrap_or(0)
    };
    let reserve = |n: usize| -> Vec<String> {
        let held: Vec<std::net::TcpListener> =
            (0..n).map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        held.iter().map(|l| l.local_addr().unwrap().to_string()).collect()
    };
    let dir = std::env::temp_dir().join(format!("spike-report-cluster-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    println!("## Fleet-scale serving: event-driven core, snapshots, sharded cluster\n");

    // ---- 1. ten thousand concurrent connections, one instance ----
    let loadgen_json = {
        let addr = reserve(1).pop().unwrap();
        let served = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("spike-served")))
            .filter(|p| p.exists());
        match served {
            None => {
                eprintln!(
                    "spike-served not found next to this binary; skipping the loadgen \
                     section (build it with `cargo build --release -p spike-serve`)"
                );
                Json::Null
            }
            Some(bin) => {
                let mut child = std::process::Command::new(&bin)
                    .args(["--listen", &addr, "--workers", "4"])
                    .stderr(std::process::Stdio::null())
                    .spawn()
                    .expect("spawn spike-served");
                let deadline = Instant::now() + Duration::from_secs(30);
                loop {
                    match std::net::TcpStream::connect(&addr) {
                        Ok(_) => break,
                        Err(_) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(25))
                        }
                        Err(e) => panic!("spike-served never came up on {addr}: {e}"),
                    }
                }
                let images: Vec<Vec<u8>> = (0..4)
                    .map(|i| generate_executable(seed ^ (0x10AD + i as u64), 6).to_image())
                    .collect();
                let options = loadgen::LoadgenOptions {
                    connect: addr.clone(),
                    connections: 10_000,
                    inflight: 32,
                };
                eprintln!("loadgen: {} connections against {addr} ...", options.connections);
                let report = loadgen::run(&options, &images).expect("loadgen runs");
                shutdown_cmd(&Endpoint::Tcp(addr.clone()));
                let _ = child.wait();
                println!(
                    "{:>12} {} held concurrently: p50 {} us, p95 {} us, p99 {} us \
                     ({:.0} r/s, {} errors)",
                    "connections:",
                    report.connections,
                    report.p50_us,
                    report.p95_us,
                    report.p99_us,
                    report.rps,
                    report.errors,
                );
                assert!(
                    report.connections >= 10_000,
                    "the daemon must hold at least 10k concurrent connections, got {}",
                    report.connections
                );
                assert_eq!(report.errors, 0, "load generation saw failed requests");
                report.to_json()
            }
        }
    };

    // ---- 2. cold start vs warm restart from the drain snapshot ----
    let gcc = spike_synth::profile("gcc").expect("known benchmark");
    let restart_images: Vec<Vec<u8>> = (0..6)
        .map(|i| spike_synth::generate(&gcc, scale, seed ^ (0x5AAB + i as u64)).to_image())
        .collect();
    let snap = dir.join("single.snap");
    let boot = |snapshot: std::path::PathBuf| -> (Server, Endpoint) {
        let server = Server::start(&ServeOptions {
            tcp: Some("127.0.0.1:0".into()),
            snapshot: Some(snapshot),
            workers: 2,
            analysis_threads: 1,
            ..ServeOptions::default()
        })
        .expect("daemon starts");
        let endpoint = Endpoint::Tcp(server.tcp_addr().expect("tcp bound").to_string());
        (server, endpoint)
    };
    let drive_all = |endpoint: &Endpoint| {
        for (i, image) in restart_images.iter().enumerate() {
            let (r, _) =
                client::request(endpoint, &request(&format!("img{i}")), image).expect("round trip");
            assert_eq!(r.exit, 0, "{:?}", r.error);
        }
    };
    let t = Instant::now();
    let (server, endpoint) = boot(snap.clone());
    drive_all(&endpoint);
    let cold_ms = t.elapsed().as_millis().max(1);
    shutdown_cmd(&endpoint);
    server.join();
    let t = Instant::now();
    let (server, endpoint) = boot(snap.clone());
    let restored = server.restored().map(|r| r.entries).unwrap_or(0);
    drive_all(&endpoint);
    let warm_ms = t.elapsed().as_millis().max(1);
    shutdown_cmd(&endpoint);
    server.join();
    assert_eq!(restored, restart_images.len(), "drain snapshot must restore every entry");
    assert!(
        warm_ms < cold_ms,
        "a warm restart must beat a cold start ({warm_ms} ms vs {cold_ms} ms)"
    );
    println!(
        "{:>12} cold start-and-serve {cold_ms} ms, warm restart {warm_ms} ms ({:.1}x)",
        "snapshot:",
        cold_ms as f64 / warm_ms as f64
    );
    let restart_json = Json::parse(&format!(
        "{{\"images\": {}, \"restored_entries\": {restored}, \"cold_ms\": {cold_ms}, \
         \"warm_ms\": {warm_ms}, \"warm_speedup\": {:.3}}}",
        restart_images.len(),
        cold_ms as f64 / warm_ms as f64
    ))
    .expect("restart row is JSON");

    // ---- 3. three shards behind the router, one killed mid-run ----
    let shards = reserve(3);
    let boot_shard = |i: usize| -> Server {
        Server::start(&ServeOptions {
            tcp: Some(shards[i].clone()),
            cluster: shards.clone(),
            shard_index: Some(i),
            snapshot: Some(dir.join(format!("shard{i}.snap"))),
            workers: 2,
            analysis_threads: 1,
            ..ServeOptions::default()
        })
        .expect("shard starts")
    };
    let mut servers: Vec<Option<Server>> = (0..shards.len()).map(|i| Some(boot_shard(i))).collect();
    let router = Router::start(&RouterOptions {
        listen: "127.0.0.1:0".into(),
        shards: shards.clone(),
        ..RouterOptions::default()
    })
    .expect("router starts");
    let via = Endpoint::Tcp(router.addr().to_string());

    let compress = spike_synth::profile("compress").expect("known benchmark");
    let cluster_images: Vec<(String, Vec<u8>, String)> = (0..12)
        .map(|i| {
            let program = spike_synth::generate(&compress, scale, seed ^ (0xC1 + i as u64));
            let image = program.to_image();
            let analysis = spike_core::analyze_with(&program, &AnalysisOptions::default());
            let name = format!("img{i}");
            let expected = render::analyze_report(&name, &program, &analysis, false, None)
                .expect("program renders");
            (name, image, expected)
        })
        .collect();
    let ring = Ring::new(shards.clone());

    // Two routed passes (cold then warm), byte-identity on every answer.
    for _pass in 0..2 {
        for (name, image, expected) in &cluster_images {
            let (r, _) = client::request(&via, &request(name), image).expect("routed round trip");
            assert_eq!(r.exit, 0, "{:?}", r.error);
            assert_eq!(r.stdout, *expected, "routed response diverged from the local path");
        }
    }

    // Kill shard 0 (drains, writes its snapshot), restart it warm on the
    // same port, keep serving.
    let t = Instant::now();
    shutdown_cmd(&Endpoint::Tcp(shards[0].clone()));
    servers[0].take().expect("shard 0 is up").join();
    let reborn = boot_shard(0);
    let shard0_restored = reborn.restored().map(|r| r.entries).unwrap_or(0);
    servers[0] = Some(reborn);
    let restart_ms = t.elapsed().as_millis();
    assert!(shard0_restored > 0, "the restarted shard must come back warm from its snapshot");

    for (name, image, expected) in &cluster_images {
        let (r, _) = client::request(&via, &request(name), image).expect("routed round trip");
        assert_eq!(r.exit, 0, "{:?}", r.error);
        assert_eq!(r.stdout, *expected, "response changed after the shard restart");
    }
    println!(
        "{:>12} shard 0 killed and restarted warm in {restart_ms} ms ({shard0_restored} \
         entries restored); responses stayed byte-identical",
        "cluster:"
    );

    let mut per_shard = Vec::new();
    println!(
        "\n{:<8} {:>8} {:>8} {:>8} {:>10} {:>9}",
        "shard", "owned", "entries", "hits", "misses", "hit rate"
    );
    for (i, addr) in shards.iter().enumerate() {
        let owned = cluster_images
            .iter()
            .filter(|(_, image, _)| ring.owner_of(spike_serve::cache::CacheKey::of(image)) == i)
            .count();
        let s = stats_of(&Endpoint::Tcp(addr.clone()));
        let (entries, hits) = (counter(&s, "cache", "entries"), counter(&s, "cache", "hits"));
        let misses = counter(&s, "cache", "misses");
        let forwarded = s.get("forwarded").and_then(Json::as_u64).unwrap_or(0);
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        println!("{i:<8} {owned:>8} {entries:>8} {hits:>8} {misses:>10} {hit_rate:>9.3}");
        per_shard.push(format!(
            "{{\"shard\": {i}, \"owned_images\": {owned}, \"entries\": {entries}, \
             \"hits\": {hits}, \"misses\": {misses}, \"forwarded\": {forwarded}, \
             \"hit_rate\": {hit_rate:.3}}}"
        ));
    }
    let total_entries: u64 = shards
        .iter()
        .map(|addr| counter(&stats_of(&Endpoint::Tcp(addr.clone())), "cache", "entries"))
        .sum();
    assert_eq!(
        total_entries,
        cluster_images.len() as u64,
        "shards must hold disjoint warm sets: one copy of each image cluster-wide"
    );

    // One shutdown through the router drains the whole cluster.
    shutdown_cmd(&via);
    router.join();
    for server in servers {
        server.expect("shard is up").join();
    }
    let _ = std::fs::remove_dir_all(&dir);

    let cluster_json = Json::parse(&format!(
        "{{\"shards\": {}, \"images\": {}, \"byte_identical\": true, \
         \"shard0_restart\": {{\"restored_entries\": {shard0_restored}, \
         \"restart_ms\": {restart_ms}}}, \"restart\": {restart_json_text}, \
         \"per_shard\": [{per_shard_text}]}}",
        shards.len(),
        cluster_images.len(),
        restart_json_text = {
            let mut s = String::new();
            restart_json.write(&mut s);
            s
        },
        per_shard_text = per_shard.join(", "),
    ))
    .expect("cluster row is JSON");

    update_bench_serve(vec![("loadgen", loadgen_json), ("cluster", cluster_json)]);
}

/// Profiles every paper benchmark under the simulator, re-optimizes it
/// with the measured profile, and counts the dynamic instructions the
/// PGO build saves over a LICM-less build producing the same output
/// prefix. Uses the same calibrated shape as the workspace PGO property
/// tests (scale 20/routines, seed 1) so the committed `BENCH_pgo.json`
/// reflects exactly what `tests/prop_pgo.rs` verifies for behaviour.
fn pgo_report(threads: usize) {
    use spike_core::AnalysisOptions;
    use spike_opt::{optimize_with, OptOptions};
    use spike_profile::Profile;
    use spike_sim::{run, run_profiled, steps_to_output};

    const PROFILE_FUEL: u64 = 200_000;

    println!("## Profile-guided loop optimization: dynamic instructions to equal output\n");
    println!(
        "{:<10} {:>9} {:>7} {:>5} {:>12} {:>12} {:>9}",
        "benchmark", "routines", "hoists", "spill", "base (dyn)", "pgo (dyn)", "saved"
    );

    let analysis = AnalysisOptions { threads, ..AnalysisOptions::default() };
    let mut rows = Vec::new();
    let mut reduced = 0usize;
    let mut total = 0usize;
    for p in profiles() {
        eprintln!("profiling {} ...", p.name);
        let program = spike_synth::generate(&p, 20.0 / p.routines as f64, 1);
        let (_, exec) = run_profiled(&program, PROFILE_FUEL);
        let profile = Profile::collect(&program, &exec);

        let base_opts =
            OptOptions { analysis: analysis.clone(), licm: false, ..OptOptions::default() };
        let pgo_opts = OptOptions {
            analysis: analysis.clone(),
            profile: Some(profile),
            ..OptOptions::default()
        };
        let (base, _) = optimize_with(&program, &base_opts).expect("baseline optimizes");
        let (pgo, rep) = optimize_with(&program, &pgo_opts).expect("pgo optimizes");

        // Both variants preserve behaviour, so equal output prefixes are
        // comparable work: count the instructions each needs to emit the
        // longest prefix both produce within the fuel budget.
        let outputs = |prog: &spike_program::Program| match run(prog, PROFILE_FUEL) {
            Outcome::Halted { output, .. } | Outcome::OutOfFuel { output, .. } => output.len(),
            _ => 0,
        };
        let k = outputs(&base).min(outputs(&pgo));
        let dyn_base = steps_to_output(&base, PROFILE_FUEL, k).expect("k outputs were produced");
        let dyn_pgo = steps_to_output(&pgo, PROFILE_FUEL, k).expect("k outputs were produced");

        total += 1;
        if dyn_pgo < dyn_base {
            reduced += 1;
        }
        let saved_pct = if dyn_base == 0 {
            0.0
        } else {
            100.0 * (dyn_base as f64 - dyn_pgo as f64) / dyn_base as f64
        };
        println!(
            "{:<10} {:>9} {:>7} {:>5} {:>12} {:>12} {:>8.1}%",
            p.name,
            program.routines().len(),
            rep.loads_hoisted + rep.ops_hoisted,
            rep.spill_pairs_removed,
            dyn_base,
            dyn_pgo,
            saved_pct,
        );
        rows.push(format!(
            "    {{\"benchmark\": \"{}\", \"routines\": {}, \"outputs\": {k}, \
             \"loads_hoisted\": {}, \"ops_hoisted\": {}, \"spill_pairs_removed\": {}, \
             \"spill_dynamic_saved\": {}, \"dyn_insns_base\": {dyn_base}, \
             \"dyn_insns_pgo\": {dyn_pgo}, \"reduced\": {}}}",
            p.name,
            program.routines().len(),
            rep.loads_hoisted,
            rep.ops_hoisted,
            rep.spill_pairs_removed,
            rep.spill_dynamic_saved,
            dyn_pgo < dyn_base,
        ));
    }

    println!("\n  {reduced} of {total} profiles execute fewer dynamic instructions with PGO");
    assert!(
        reduced * 4 >= total * 3,
        "PGO regression: only {reduced} of {total} profiles improved (acceptance: >= 12 of 16)"
    );

    let json = format!(
        "{{\n  \"profile_fuel\": {PROFILE_FUEL},\n  \"seed\": 1,\n  \"profiles\": {total},\n  \
         \"reduced\": {reduced},\n  \"runs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    match std::fs::write("BENCH_pgo.json", &json) {
        Ok(()) => println!("\n  wrote BENCH_pgo.json\n"),
        Err(e) => eprintln!("cannot write BENCH_pgo.json: {e}"),
    }
}
