//! Criterion benchmarks mirroring the paper's evaluation:
//!
//! * `table2/analyze/<bench>` — end-to-end interprocedural dataflow time
//!   per benchmark profile (Table 2's "Total Dataflow Time");
//! * `table4/<bench>/{with,without}-branch-nodes` — the §3.6 ablation;
//! * `table5/<bench>/{psg,full-cfg}` — PSG vs whole-program-CFG analysis;
//! * `fig14/gcc/scale-*` — analysis time as program size grows;
//! * `stages/<stage>` — the Figure 13 stage split on one mid-size input;
//! * `opt/passes` — the Figure 1 optimizer on a mid-size input;
//! * `incremental/<bench>/{scratch,incremental}` — the optimizer's pass
//!   manager with from-scratch analysis per pass vs one cached
//!   [`spike_core::AnalysisCache`] re-analyzing only dirty routines;
//! * `phases/<bench>/{fifo,scc-wave,sparse}` — the chaotic FIFO fixpoint
//!   engine vs the SCC-wave priority schedule for phases 1–2, solving
//!   dense per-node sets, and vs the same schedule solving contracted
//!   sparse def-use chains (the default);
//! * `serve/{warm-analyze,warm-lint,stats}` — steady-state round-trips
//!   against an in-process `spike-served` daemon: a warm cache hit pays
//!   hashing, rendering and framing but no analysis, so this isolates
//!   the service overhead the `report serve` throughput numbers sit on;
//! * `query/{full-solve,engine-build,cold-query,memoized-repeat}` —
//!   the demand-driven query engine against the whole-program solve it
//!   replaces for single-routine questions: `engine-build` is the
//!   one-time front-end cost, `cold-query` a fresh engine plus one
//!   `live-at-entry` cone solve (the marginal cone cost is the
//!   difference), `memoized-repeat` the steady-state re-ask.
//!
//! Profiles are scaled down (default 5%) so the whole suite runs in
//! minutes; relative shapes are what the paper's claims are about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use spike_baseline::analyze_baseline;
use spike_cfg::{ProgramCfg, RoutineCfg};
use spike_core::{analyze, analyze_with, AnalysisOptions};
use spike_synth::{generate, profile, profiles};

const SCALE: f64 = 0.05;
const SEED: u64 = 0x5B1CE;

/// The subset of profiles benchmarked individually (one small, one large
/// per suite plus the branch-node extremes).
const PICKS: [&str; 6] = ["compress", "li", "gcc", "perl", "sqlservr", "vc"];

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for p in profiles() {
        if !PICKS.contains(&p.name) {
            continue;
        }
        let program = generate(&p, SCALE, SEED);
        g.bench_with_input(BenchmarkId::new("analyze", p.name), &program, |b, prog| {
            b.iter(|| black_box(analyze(prog)));
        });
    }
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    for name in ["sqlservr", "winword"] {
        let p = profile(name).expect("known benchmark");
        let program = generate(&p, SCALE, SEED);
        g.bench_with_input(BenchmarkId::new(name, "with-branch-nodes"), &program, |b, prog| {
            b.iter(|| black_box(analyze(prog)))
        });
        let ablated = AnalysisOptions { branch_nodes: false, ..AnalysisOptions::default() };
        g.bench_with_input(BenchmarkId::new(name, "without-branch-nodes"), &program, |b, prog| {
            b.iter(|| black_box(analyze_with(prog, &ablated)))
        });
    }
    g.finish();
}

fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    for name in ["gcc", "texim"] {
        let p = profile(name).expect("known benchmark");
        let program = generate(&p, SCALE, SEED);
        g.bench_with_input(BenchmarkId::new(name, "psg"), &program, |b, prog| {
            b.iter(|| black_box(analyze(prog)));
        });
        g.bench_with_input(BenchmarkId::new(name, "full-cfg"), &program, |b, prog| {
            b.iter(|| black_box(analyze_baseline(prog)));
        });
    }
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    let p = profile("gcc").expect("known benchmark");
    for scale_pct in [2usize, 5, 10, 20] {
        let program = generate(&p, scale_pct as f64 / 100.0, SEED);
        g.bench_with_input(
            BenchmarkId::new("gcc", format!("scale-{scale_pct}pct")),
            &program,
            |b, prog| b.iter(|| black_box(analyze(prog))),
        );
    }
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("stages");
    g.sample_size(10);
    let p = profile("perl").expect("known benchmark");
    let program = generate(&p, SCALE, SEED);

    g.bench_function("cfg-build", |b| {
        b.iter(|| {
            for (id, _) in program.iter() {
                black_box(RoutineCfg::build_structure(&program, id));
            }
        })
    });
    g.bench_function("init-def-ubd", |b| {
        let mut cfgs: Vec<RoutineCfg> =
            program.iter().map(|(id, _)| RoutineCfg::build_structure(&program, id)).collect();
        b.iter(|| {
            for c in &mut cfgs {
                c.init_def_ubd(&program);
            }
            black_box(&cfgs);
        })
    });
    g.bench_function("full-pipeline", |b| b.iter(|| black_box(analyze(&program))));
    let _ = ProgramCfg::build(&program);
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel");
    g.sample_size(10);
    for name in ["sqlservr", "winword"] {
        let p = profile(name).expect("known benchmark");
        let program = generate(&p, SCALE, SEED);
        for threads in [1usize, 4] {
            let opts = AnalysisOptions { threads, ..AnalysisOptions::default() };
            g.bench_with_input(
                BenchmarkId::new(name, format!("threads-{threads}")),
                &program,
                |b, prog| b.iter(|| black_box(analyze_with(prog, &opts))),
            );
        }
    }
    g.finish();
}

fn bench_opt(c: &mut Criterion) {
    let mut g = c.benchmark_group("opt");
    g.sample_size(10);
    let p = profile("li").expect("known benchmark");
    let program = generate(&p, 0.1, SEED);
    g.bench_function("passes", |b| {
        b.iter(|| black_box(spike_opt::optimize(&program).expect("optimizes")))
    });
    g.finish();
}

fn bench_phases(c: &mut Criterion) {
    let mut g = c.benchmark_group("phases");
    g.sample_size(10);
    for name in ["gcc", "sqlservr"] {
        let p = profile(name).expect("known benchmark");
        let program = generate(&p, SCALE, SEED);
        // The fifo and scc-wave configurations pin the dense per-node
        // representation so their series stay comparable across runs;
        // `sparse` is the SCC-wave schedule solving over contracted
        // def-use chains (the default).
        for (label, scheduler, representation) in [
            ("fifo", spike_core::Scheduler::Fifo, spike_core::Representation::Dense),
            ("scc-wave", spike_core::Scheduler::SccWave, spike_core::Representation::Dense),
            ("sparse", spike_core::Scheduler::SccWave, spike_core::Representation::Sparse),
        ] {
            let opts = AnalysisOptions { scheduler, representation, ..AnalysisOptions::default() };
            g.bench_with_input(BenchmarkId::new(name, label), &program, |b, prog| {
                b.iter(|| black_box(analyze_with(prog, &opts)))
            });
        }
    }
    g.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("incremental");
    g.sample_size(10);
    for name in ["li", "gcc"] {
        let p = profile(name).expect("known benchmark");
        let program = generate(&p, 0.1, SEED);
        for (label, incremental) in [("scratch", false), ("incremental", true)] {
            let opts = spike_opt::OptOptions { incremental, ..spike_opt::OptOptions::default() };
            g.bench_with_input(BenchmarkId::new(name, label), &program, |b, prog| {
                b.iter(|| black_box(spike_opt::optimize_with(prog, &opts).expect("optimizes")))
            });
        }
    }
    g.finish();
}

fn bench_serve(c: &mut Criterion) {
    use spike_serve::{client, Command, Endpoint, LintFormat, Request, ServeOptions, Server};

    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    let p = profile("li").expect("known benchmark");
    let image = generate(&p, SCALE, SEED).to_image();

    let options = ServeOptions {
        tcp: Some("127.0.0.1:0".into()),
        analysis_threads: 1,
        ..ServeOptions::default()
    };
    let server = Server::start(&options).expect("daemon starts");
    let endpoint = Endpoint::Tcp(server.tcp_addr().expect("tcp bound").to_string());
    let request =
        |cmd: Command| Request { cmd, image_name: "img".into(), deadline_ms: None, profile_len: 0 };
    let send = |cmd: Command, image: &[u8]| {
        let (r, _) = client::request(&endpoint, &request(cmd), image).expect("round-trip");
        assert_eq!(r.exit, 0, "{:?}", r.error);
        r
    };
    let analyze = || Command::Analyze { summaries: false, routine: None };

    // Prime the cache so every timed request is a warm hit.
    send(analyze(), &image);

    g.bench_function("warm-analyze", |b| b.iter(|| black_box(send(analyze(), &image))));
    g.bench_function("warm-lint", |b| {
        b.iter(|| black_box(send(Command::Lint { format: LintFormat::Json }, &image)))
    });
    g.bench_function("stats", |b| b.iter(|| black_box(send(Command::Stats, &[]))));
    g.finish();

    send(Command::Shutdown, &[]);
    server.join();
}

fn bench_query(c: &mut Criterion) {
    use spike_core::{Query, QueryEngine};
    use spike_program::RoutineId;

    let mut g = c.benchmark_group("query");
    g.sample_size(10);
    let p = profile("gcc").expect("known benchmark");
    let program = generate(&p, SCALE, SEED);
    let options = AnalysisOptions::default();
    // A mid-index routine: deep enough in the call graph to have a
    // non-trivial cone, far from the entry's worst case.
    let rid = RoutineId::from_index(program.routines().len() / 2);

    g.bench_function("full-solve", |b| b.iter(|| black_box(analyze(&program))));
    g.bench_function("engine-build", |b| {
        b.iter(|| black_box(QueryEngine::new(&program, &options)))
    });
    // Fresh engine + one cold cone — the latency an interactive client
    // sees for its first question about an image; subtract engine-build
    // for the marginal cone cost (`report queries` isolates it exactly).
    g.bench_function("cold-query", |b| {
        b.iter(|| {
            let mut e = QueryEngine::new(&program, &options);
            black_box(e.query(&Query::LiveAtEntry(rid)))
        })
    });
    // Steady state: the cone is memoized, a repeat re-solves nothing.
    g.bench_function("memoized-repeat", |b| {
        let mut e = QueryEngine::new(&program, &options);
        e.query(&Query::LiveAtEntry(rid));
        b.iter(|| black_box(e.query(&Query::LiveAtEntry(rid))));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table2,
    bench_table4,
    bench_table5,
    bench_fig14,
    bench_stages,
    bench_parallel,
    bench_opt,
    bench_phases,
    bench_incremental,
    bench_serve,
    bench_query
);
criterion_main!(benches);
