//! Exit-code audit for the `spike` binary. The contract (documented in
//! `main.rs` and README): 0 = success, and for `lint` specifically no
//! error-severity findings; 1 = `lint` found errors; 2 = usage or I/O
//! problems, for every subcommand.

use std::process::{Command, Output};

fn spike(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spike-cli")).args(args).output().expect("binary runs")
}

fn code(o: &Output) -> i32 {
    o.status.code().expect("no signal")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

struct TempDirGuard {
    path: std::path::PathBuf,
}

impl Drop for TempDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn tempdir(tag: &str) -> TempDirGuard {
    let path = std::env::temp_dir().join(format!("spike-exit-codes-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&path).expect("temp dir");
    TempDirGuard { path }
}

/// Assembles `text` into an image file and returns its path.
fn assemble(dir: &TempDirGuard, name: &str, text: &str) -> String {
    let src = dir.path.join(format!("{name}.s"));
    let img = dir.path.join(format!("{name}.img"));
    std::fs::write(&src, text).unwrap();
    let o = spike(&["asm", src.to_str().unwrap(), "-o", img.to_str().unwrap()]);
    assert_eq!(code(&o), 0, "{}", stderr(&o));
    img.to_string_lossy().into_owned()
}

#[test]
fn lint_clean_program_exits_zero() {
    let dir = tempdir("clean");
    let img = dir.path.join("prog.img");
    let o = spike(&["gen-exec", "--seed", "11", "--routines", "5", "-o", img.to_str().unwrap()]);
    assert_eq!(code(&o), 0, "{}", stderr(&o));

    let o = spike(&["lint", img.to_str().unwrap()]);
    assert_eq!(code(&o), 0, "{}{}", stdout(&o), stderr(&o));
    assert!(stdout(&o).contains("0 error(s)"));

    let o = spike(&["lint", img.to_str().unwrap(), "--format", "json"]);
    assert_eq!(code(&o), 0);
    let json = stdout(&o);
    assert!(json.starts_with("{\"tool\":\"spike-lint\""));
    assert!(json.contains("\"summary\":{\"errors\":0,"));
}

#[test]
fn lint_warnings_do_not_fail_the_exit_code() {
    let dir = tempdir("warn");
    // The write to t0 is never read: a dead-store warning, not an error.
    let img = assemble(&dir, "warn", ".routine main\n    lda t0, 1(zero)\n    halt\n");
    let o = spike(&["lint", &img]);
    assert_eq!(code(&o), 0, "{}", stdout(&o));
    assert!(stdout(&o).contains("warning[dead-store]"));
}

#[test]
fn lint_error_findings_exit_one() {
    let dir = tempdir("uninit");
    // t0 is read before any write: an uninit-read error.
    let img = assemble(&dir, "bad", ".routine main\n    addq t0, t0, v0\n    putint\n    halt\n");

    let o = spike(&["lint", &img]);
    assert_eq!(code(&o), 1, "{}", stdout(&o));
    assert!(stdout(&o).contains("error[uninit-read]"));

    let o = spike(&["lint", &img, "--format", "json"]);
    assert_eq!(code(&o), 1);
    assert!(stdout(&o).contains("\"check\":\"uninit-read\""));
}

#[test]
fn lint_reports_malformed_images_as_findings() {
    let dir = tempdir("malformed");
    let path = dir.path.join("junk.img");
    std::fs::write(&path, b"not an image").unwrap();
    let o = spike(&["lint", path.to_str().unwrap()]);
    assert_eq!(code(&o), 1, "{}", stderr(&o));
    assert!(stdout(&o).contains("error[malformed-image]"));

    let o = spike(&["lint", path.to_str().unwrap(), "--format", "json"]);
    assert_eq!(code(&o), 1);
    assert!(stdout(&o).contains("\"check\":\"malformed-image\""));
}

/// Kills the daemon child on test failure; the happy path takes it out
/// with [`ServeGuard::into_inner`] to assert a graceful exit instead.
struct ServeGuard {
    child: Option<std::process::Child>,
}

impl ServeGuard {
    fn into_inner(mut self) -> std::process::Child {
        self.child.take().expect("child not yet taken")
    }
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Starts `spike serve` on a Unix socket and waits until it accepts
/// requests.
fn start_daemon(sock: &str) -> ServeGuard {
    let child = Command::new(env!("CARGO_BIN_EXE_spike-cli"))
        .args(["serve", "--unix", sock, "--workers", "2"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("daemon starts");
    let guard = ServeGuard { child: Some(child) };
    let connect = format!("unix:{sock}");
    for _ in 0..200 {
        if std::path::Path::new(sock).exists() {
            let o = spike(&["client", "stats", "--connect", &connect]);
            if code(&o) == 0 {
                return guard;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    panic!("daemon did not come up on {sock}");
}

#[test]
fn client_relays_daemon_exit_codes_and_output_bytes() {
    let dir = tempdir("client");
    let sock = dir.path.join("d.sock").to_string_lossy().into_owned();
    let connect = format!("unix:{sock}");
    let clean =
        assemble(&dir, "clean", ".routine main\n    lda v0, 7(zero)\n    putint\n    halt\n");
    let bad = assemble(&dir, "bad", ".routine main\n    addq t0, t0, v0\n    putint\n    halt\n");

    let daemon = start_daemon(&sock);

    // Exit 0 with stdout byte-identical to the local path.
    for args in [
        vec!["lint", clean.as_str()],
        vec!["analyze", clean.as_str()],
        vec!["lint", clean.as_str(), "--format", "json"],
        vec!["query", "summary", "main", clean.as_str()],
        vec!["query", "live-at-entry", "main", clean.as_str()],
        vec!["query", "uninit", "main", clean.as_str()],
    ] {
        let local = spike(&args);
        let mut remote_args = vec!["client"];
        remote_args.extend(&args);
        remote_args.extend(["--connect", connect.as_str()]);
        let remote = spike(&remote_args);
        assert_eq!(code(&remote), 0, "{:?}: {}", args, stderr(&remote));
        assert_eq!(remote.stdout, local.stdout, "client {:?} diverged from local", args);
    }

    // Lint errors are relayed as exit 1, same report bytes.
    let local = spike(&["lint", &bad]);
    let remote = spike(&["client", "lint", &bad, "--connect", &connect]);
    assert_eq!(code(&remote), 1);
    assert_eq!(remote.stdout, local.stdout);
    assert!(stdout(&remote).contains("error[uninit-read]"));

    // An unreadable image fails client-side with the local message.
    let o = spike(&["client", "lint", "/nonexistent/image.img", "--connect", &connect]);
    assert_eq!(code(&o), 2);
    assert!(stderr(&o).contains("cannot read"));

    // Graceful shutdown: the command exits 0 and so does the daemon.
    let o = spike(&["client", "shutdown", "--connect", &connect]);
    assert_eq!(code(&o), 0, "{}", stderr(&o));
    let status = daemon.into_inner().wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "daemon must drain and exit 0");
}

/// Reads one complete request frame (8-byte header + body) so the fake
/// daemons below can fail *after* the client has committed its request.
fn drain_request(conn: &mut impl std::io::Read) {
    let mut header = [0u8; 8];
    conn.read_exact(&mut header).expect("request header");
    let json = u32::from_be_bytes(header[0..4].try_into().unwrap()) as usize;
    let blob = u32::from_be_bytes(header[4..8].try_into().unwrap()) as usize;
    let mut body = vec![0u8; json + blob];
    conn.read_exact(&mut body).expect("request body");
}

/// Transport failures mid-conversation are exit 2 (infrastructure), never
/// 0 or 1 (verdicts): a truncated response must not read as "clean".
#[test]
fn client_transport_failures_exit_two() {
    use std::io::Write as _;
    use std::os::unix::net::UnixListener;

    let dir = tempdir("transport");
    let img = assemble(&dir, "ok", ".routine main\n    lda v0, 7(zero)\n    putint\n    halt\n");

    // A daemon that replies with a frame header promising 100 bytes of
    // response, sends 10, and closes: the client dies mid-frame.
    let sock = dir.path.join("trunc.sock").to_string_lossy().into_owned();
    let listener = UnixListener::bind(&sock).unwrap();
    let t = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        drain_request(&mut conn);
        let mut frame = Vec::new();
        frame.extend_from_slice(&100u32.to_be_bytes());
        frame.extend_from_slice(&0u32.to_be_bytes());
        frame.extend_from_slice(&[b'{'; 10]);
        let _ = conn.write_all(&frame);
    });
    let o = spike(&["client", "lint", &img, "--connect", &format!("unix:{sock}")]);
    t.join().unwrap();
    assert_eq!(code(&o), 2, "truncated frame: {}", stderr(&o));
    assert!(stderr(&o).contains("mid-frame"), "{}", stderr(&o));

    // A daemon that reads the request, then closes without replying.
    let sock = dir.path.join("close.sock").to_string_lossy().into_owned();
    let listener = UnixListener::bind(&sock).unwrap();
    let t = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        drain_request(&mut conn);
    });
    let o = spike(&["client", "lint", &img, "--connect", &format!("unix:{sock}")]);
    t.join().unwrap();
    assert_eq!(code(&o), 2, "connection closed without reply: {}", stderr(&o));
    assert!(stderr(&o).contains("without replying"), "{}", stderr(&o));

    // A daemon that slams the door before even reading the request: the
    // client sees a reset or an immediate EOF, both infrastructure.
    let sock = dir.path.join("reset.sock").to_string_lossy().into_owned();
    let listener = UnixListener::bind(&sock).unwrap();
    let t = std::thread::spawn(move || {
        let (conn, _) = listener.accept().unwrap();
        drop(conn);
    });
    let o = spike(&["client", "lint", &img, "--connect", &format!("unix:{sock}")]);
    t.join().unwrap();
    assert_eq!(code(&o), 2, "connection reset: {}", stderr(&o));
}

#[test]
fn query_exit_codes_follow_the_contract() {
    let dir = tempdir("query");
    let clean = assemble(
        &dir,
        "clean",
        ".routine main\n    lda a0, 1(zero)\n    bsr leaf\n    putint\n    halt\n\
         .routine leaf\n    addq a0, a0, v0\n    ret (ra)\n",
    );
    let bad = assemble(&dir, "bad", ".routine main\n    addq t0, t0, v0\n    putint\n    halt\n");

    // Answerable queries exit 0, whatever the verdict.
    for args in [
        vec!["query", "summary", "main", clean.as_str()],
        vec!["query", "live-at-entry", "leaf", clean.as_str()],
        vec!["query", "reaches", "main", "leaf", clean.as_str()],
        vec!["query", "reaches", "leaf", "main", clean.as_str()],
        vec!["query", "uninit", "main", clean.as_str()],
    ] {
        let o = spike(&args);
        assert_eq!(code(&o), 0, "{args:?}: {}{}", stdout(&o), stderr(&o));
        assert!(!stdout(&o).is_empty(), "{args:?} printed nothing");
    }

    // `uninit` findings exit 1, like lint.
    let o = spike(&["query", "uninit", "main", &bad]);
    assert_eq!(code(&o), 1, "{}{}", stdout(&o), stderr(&o));
    assert!(stdout(&o).contains("error[uninit-read]"));

    // Usage problems exit 2.
    for args in [
        vec!["query", "summary", "nope", clean.as_str()],
        vec!["query", "reaches", "main", "nope", clean.as_str()],
        vec!["query", "frobnicate", "main", clean.as_str()],
        vec!["query", "reaches", "main", clean.as_str()],
        vec!["query", "summary", "main", "leaf", clean.as_str()],
        vec!["query", "summary", "main", "/nonexistent/image.img"],
        vec!["query", "summary"],
    ] {
        let o = spike(&args);
        assert_eq!(code(&o), 2, "{args:?}: {}{}", stdout(&o), stderr(&o));
    }
}

#[test]
fn client_connect_and_usage_failures_exit_two() {
    let dir = tempdir("client-fail");
    let img = assemble(&dir, "ok", ".routine main\n    halt\n");

    // Nothing listening.
    let o = spike(&["client", "lint", &img, "--connect", "unix:/nonexistent/d.sock"]);
    assert_eq!(code(&o), 2);
    assert!(stderr(&o).contains("cannot connect"), "{}", stderr(&o));

    // Usage problems.
    let o = spike(&["client", "lint", &img]);
    assert_eq!(code(&o), 2);
    assert!(stderr(&o).contains("--connect"));
    let o = spike(&["client", "frobnicate", "--connect", "unix:/tmp/x.sock"]);
    assert_eq!(code(&o), 2);
    assert!(stderr(&o).contains("unknown client subcommand"));
    let o = spike(&["client"]);
    assert_eq!(code(&o), 2);
    assert!(stderr(&o).contains("needs a subcommand"));

    // `serve` with no listener configured is a usage problem too.
    let o = spike(&["serve"]);
    assert_eq!(code(&o), 2);
    assert!(stderr(&o).contains("--listen"));
}

#[test]
fn usage_and_io_problems_exit_two() {
    // Missing file is exit 2 for every file-taking subcommand.
    for cmd in ["lint", "run", "analyze", "optimize", "compare", "disasm", "dot"] {
        let o = spike(&[cmd, "/nonexistent/image.img"]);
        assert_eq!(code(&o), 2, "{cmd} on a missing file");
        assert!(stderr(&o).contains("cannot read"), "{cmd}: {}", stderr(&o));
    }
    // Missing operand.
    let o = spike(&["lint"]);
    assert_eq!(code(&o), 2);
    assert!(stderr(&o).contains("needs an image path"));
    // Bad flag value.
    let dir = tempdir("badflag");
    let img = assemble(&dir, "ok", ".routine main\n    halt\n");
    let o = spike(&["lint", &img, "--format", "yaml"]);
    assert_eq!(code(&o), 2);
    assert!(stderr(&o).contains("--format"));
    // Unknown command / unknown option.
    assert_eq!(code(&spike(&["frobnicate"])), 2);
    assert_eq!(code(&spike(&["lint", &img, "--bogus"])), 2);
}
