//! End-to-end tests of the `spike` binary: every subcommand, driven the
//! way a user would drive it, through real image files on disk.

use std::path::PathBuf;
use std::process::{Command, Output};

fn spike(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spike-cli")).args(args).output().expect("binary runs")
}

fn tmp(name: &str) -> (tempdir::TempDirGuard, String) {
    let dir = tempdir::create();
    let path = dir.path.join(name).to_string_lossy().into_owned();
    (dir, path)
}

/// Minimal self-cleaning temp dir (no external crates).
mod tempdir {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct TempDirGuard {
        pub path: PathBuf,
    }

    impl Drop for TempDirGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }

    pub fn create() -> TempDirGuard {
        let path = std::env::temp_dir().join(format!(
            "spike-cli-test-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("temp dir");
        TempDirGuard { path }
    }
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn help_lists_commands() {
    let o = spike(&["--help"]);
    assert!(o.status.success());
    for cmd in ["gen", "disasm", "analyze", "optimize", "run", "lint", "compare"] {
        assert!(stdout(&o).contains(cmd), "missing {cmd}");
    }
}

#[test]
fn unknown_command_fails_cleanly() {
    let o = spike(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown command"));
}

#[test]
fn profiles_lists_all_sixteen() {
    let o = spike(&["profiles"]);
    assert!(o.status.success());
    let out = stdout(&o);
    for name in ["compress", "gcc", "acad", "winword"] {
        assert!(out.contains(name));
    }
}

#[test]
fn gen_analyze_compare_pipeline() {
    let (_dir, img) = tmp("li.img");
    let o = spike(&["gen", "li", "--scale", "0.05", "--seed", "3", "-o", &img]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("routines"));

    let o = spike(&["analyze", &img]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("psg:"));
    assert!(out.contains("call graph:"));

    let o = spike(&["analyze", &img, "--routine", "r1"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("call-used"));

    let o = spike(&["compare", &img]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("summaries identical"));
}

#[test]
fn gen_exec_optimize_run_pipeline() {
    let (_dir, img) = tmp("prog.img");
    let (_dir2, opt) = tmp("prog.opt.img");

    let o = spike(&["gen-exec", "--seed", "7", "--routines", "5", "-o", &img]);
    assert!(o.status.success(), "{}", stderr(&o));

    let before = spike(&["run", &img]);
    assert!(before.status.success(), "{}", stderr(&before));

    let o = spike(&["optimize", &img, "-o", &opt]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("instructions"));

    let after = spike(&["run", &opt]);
    assert!(after.status.success(), "{}", stderr(&after));
    // Identical observable output.
    assert_eq!(stdout(&before), stdout(&after));
}

#[test]
fn disasm_emits_reassemblable_text() {
    let dir = tempdir::create();
    let img = dir.path.join("gcc.img");
    let asm = dir.path.join("gcc.s");
    let img2 = dir.path.join("gcc2.img");
    let o = spike(&["gen", "gcc", "--scale", "0.01", "--seed", "5", "-o", img.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));

    let o = spike(&["disasm", img.to_str().unwrap()]);
    assert!(o.status.success());
    let text = stdout(&o);
    assert!(text.contains(".routine r0"));
    assert!(text.contains("bsr") || text.contains("jsr"));

    // disasm | asm round-trips to a byte-identical image.
    std::fs::write(&asm, &text).unwrap();
    let o = spike(&["asm", asm.to_str().unwrap(), "-o", img2.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert_eq!(std::fs::read(&img).unwrap(), std::fs::read(&img2).unwrap());
}

#[test]
fn dot_emits_graphviz() {
    let (_dir, img) = tmp("dot.img");
    let o = spike(&["gen-exec", "--seed", "2", "--routines", "3", "-o", &img]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = spike(&["dot", &img, "--routine", "main"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.starts_with("digraph psg {"));
    assert!(out.contains("main entry 0"));
}

#[test]
fn asm_reports_errors_with_line_numbers() {
    let dir = tempdir::create();
    let src = dir.path.join("bad.s");
    std::fs::write(&src, ".routine main\n    frobnicate a0\n    halt\n").unwrap();
    let o = spike(&["asm", src.to_str().unwrap(), "-o", "/dev/null"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("line 2"));
}

#[test]
fn hand_written_assembly_runs() {
    let dir = tempdir::create();
    let src = dir.path.join("prog.s");
    let img = dir.path.join("prog.img");
    std::fs::write(
        &src,
        "\
.routine main
    lda a0, 20(zero)
    bsr double
    putint
    halt

.routine double
    addq a0, a0, v0
    ret (ra)
",
    )
    .unwrap();
    let o = spike(&["asm", src.to_str().unwrap(), "-o", img.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = spike(&["run", img.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert_eq!(stdout(&o).trim(), "40");
}

#[test]
fn run_reports_faults_and_missing_files() {
    let o = spike(&["run", "/nonexistent/image.img"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("cannot read"));

    let o = spike(&["analyze"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("needs an image path"));
}

#[test]
fn corrupt_images_are_rejected() {
    let dir = tempdir::create();
    let path: PathBuf = dir.path.join("junk.img");
    std::fs::write(&path, b"not an image").unwrap();
    let o = spike(&["analyze", path.to_str().unwrap()]);
    assert!(!o.status.success());
}
