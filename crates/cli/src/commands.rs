//! Subcommand implementations for the `spike` binary.

use std::error::Error;
use std::fs;
use std::process::ExitCode;

use spike_cfg::ProgramCfg;
use spike_core::{analyze, analyze_with, AnalysisOptions};
use spike_program::Program;
use spike_sim::Outcome;

type Result<T> = std::result::Result<T, Box<dyn Error>>;

const USAGE: &str = "\
usage: spike <command> [options]

commands:
  gen <benchmark> [--scale S] [--seed N] -o <img>   generate a paper-profile image
  gen-exec [--routines K] [--seed N] -o <img>       generate a runnable image
  asm <file.s> -o <img>                             assemble a text module
  disasm <img>                                      disassemble to parseable assembly
  analyze <img> [--summaries] [--routine NAME] [--threads N]
                                                    interprocedural dataflow analysis
  optimize <img> -o <img> [--threads N] [--iterate]
           [--incremental|--no-incremental]         apply the Figure-1 optimizations
  run <img> [--fuel N]                              execute under the simulator
  lint <img> [--format human|json]                  interprocedural static checks
  compare <img> [--threads N]                       PSG vs whole-CFG comparison
  dot <img> [--routine NAME]                        Program Summary Graph as GraphViz
  profiles                                          list generator benchmarks
";

/// Parses and executes one invocation. The returned code is the process
/// exit status: commands other than `lint` always exit 0 on success, and
/// `lint` exits 1 when it has error-severity findings (usage and I/O
/// problems exit 2 via the `Err` path).
pub fn dispatch(args: &[String]) -> Result<ExitCode> {
    let ok = |()| ExitCode::SUCCESS;
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("gen") => gen(&args[1..]).map(ok),
        Some("gen-exec") => gen_exec(&args[1..]).map(ok),
        Some("asm") => asm(&args[1..]).map(ok),
        Some("disasm") => disasm(&args[1..]).map(ok),
        Some("analyze") => cmd_analyze(&args[1..]).map(ok),
        Some("optimize") => cmd_optimize(&args[1..]).map(ok),
        Some("run") => cmd_run(&args[1..]).map(ok),
        Some("lint") => cmd_lint(&args[1..]),
        Some("compare") => compare(&args[1..]).map(ok),
        Some("dot") => dot(&args[1..]).map(ok),
        Some("profiles") => {
            for p in spike_synth::profiles() {
                println!(
                    "{:<10} {:>7} routines {:>9} instructions  {}",
                    p.name, p.routines, p.instructions, p.description
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    }
}

/// Pulls `--flag value` pairs and positionals out of an argument list.
struct Opts<'a> {
    positional: Vec<&'a str>,
    scale: f64,
    seed: u64,
    routines: usize,
    fuel: u64,
    out: Option<&'a str>,
    summaries: bool,
    routine: Option<&'a str>,
    threads: usize,
    iterate: bool,
    incremental: bool,
    format: &'a str,
}

fn parse(args: &[String]) -> Result<Opts<'_>> {
    let mut o = Opts {
        positional: Vec::new(),
        scale: 0.05,
        seed: 1,
        routines: 6,
        fuel: 10_000_000,
        out: None,
        summaries: false,
        routine: None,
        threads: 0,
        iterate: false,
        incremental: true,
        format: "human",
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut want = |name: &str| -> Result<&str> {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value").into())
        };
        match a.as_str() {
            "--scale" => o.scale = want("--scale")?.parse()?,
            "--seed" => o.seed = want("--seed")?.parse()?,
            "--routines" => o.routines = want("--routines")?.parse()?,
            "--fuel" => o.fuel = want("--fuel")?.parse()?,
            "-o" | "--out" => o.out = Some(want("-o")?),
            "--summaries" => o.summaries = true,
            "--routine" => o.routine = Some(want("--routine")?),
            "--threads" => o.threads = want("--threads")?.parse()?,
            "--iterate" => o.iterate = true,
            "--incremental" => o.incremental = true,
            "--no-incremental" => o.incremental = false,
            "--format" => o.format = want("--format")?,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`").into())
            }
            other => o.positional.push(other),
        }
    }
    Ok(o)
}

fn load(path: &str) -> Result<Program> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(Program::from_image(&bytes)?)
}

fn save(program: &Program, path: &str) -> Result<()> {
    fs::write(path, program.to_image()).map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(())
}

fn gen(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [name] = o.positional[..] else {
        return Err("gen needs a benchmark name (see `spike profiles`)".into());
    };
    let profile =
        spike_synth::profile(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let program = spike_synth::generate(&profile, o.scale, o.seed);
    let out = o.out.ok_or("gen needs -o <img>")?;
    save(&program, out)?;
    println!(
        "wrote {out}: {} routines, {} instructions ({} at scale {})",
        program.routines().len(),
        program.total_instructions(),
        name,
        o.scale
    );
    Ok(())
}

fn gen_exec(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let program = spike_synth::generate_executable(o.seed, o.routines);
    let out = o.out.ok_or("gen-exec needs -o <img>")?;
    save(&program, out)?;
    println!(
        "wrote {out}: {} routines, {} instructions (runnable)",
        program.routines().len(),
        program.total_instructions()
    );
    Ok(())
}

fn asm(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("asm needs a source path".into());
    };
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = spike_asm::parse_asm(&text)?;
    let out = o.out.ok_or("asm needs -o <img>")?;
    save(&program, out)?;
    println!(
        "wrote {out}: {} routines, {} instructions",
        program.routines().len(),
        program.total_instructions()
    );
    Ok(())
}

fn disasm(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("disasm needs an image path".into());
    };
    let program = load(path)?;
    // The output is the assembler's input format: `spike asm` accepts it.
    print!("{}", spike_asm::write_asm(&program));
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("analyze needs an image path".into());
    };
    let program = load(path)?;
    let options = AnalysisOptions { threads: o.threads, ..AnalysisOptions::default() };
    let analysis = analyze_with(&program, &options);
    let stats = &analysis.stats;
    let psg = analysis.psg.stats();
    let counts = analysis.cfg.counts();
    let cg = spike_callgraph::CallGraph::build(&program, &analysis.cfg);

    println!(
        "{}: {} routines, {} basic blocks, {} instructions",
        path,
        program.routines().len(),
        analysis.cfg.total_blocks(),
        program.total_instructions()
    );
    println!("call graph: {}", cg.stats());
    println!(
        "psg: {} nodes, {} edges ({} flow, {} call-return, {} branch nodes)",
        psg.nodes, psg.edges, psg.flow_edges, psg.call_return_edges, psg.branch_nodes
    );
    println!(
        "cfg: {} blocks, {} arcs -> psg is {:.0}% / {:.0}% smaller",
        counts.basic_blocks,
        counts.total_arcs(),
        100.0 * (1.0 - psg.nodes as f64 / counts.basic_blocks as f64),
        100.0 * (1.0 - psg.edges as f64 / counts.total_arcs() as f64)
    );
    println!(
        "time {:?} (cfg {:?}, init {:?}, psg {:?}, phase1 {:?}, phase2 {:?}), \
         {} front-end worker(s), memory {:.2} MB",
        stats.total(),
        stats.cfg_build,
        stats.init,
        stats.psg_build,
        stats.phase1,
        stats.phase2,
        stats.front_end_workers,
        stats.memory_bytes as f64 / 1e6
    );
    println!(
        "schedule: {} + {} node visits (phase 1 + 2), {} wave(s), {} wave worker(s)",
        stats.phase1_visits, stats.phase2_visits, stats.waves, stats.phase_workers
    );

    let wanted = |name: &str| o.routine.map_or(o.summaries, |r| r == name);
    for (rid, r) in program.iter() {
        if !wanted(r.name()) {
            continue;
        }
        let s = analysis.summary.routine(rid);
        println!("\n{}:", r.name());
        for (i, _) in s.call_used.iter().enumerate() {
            println!(
                "  entrance {i}: call-used={} call-defined={} call-killed={}",
                s.call_used[i], s.call_defined[i], s.call_killed[i]
            );
            println!("  live-at-entry[{i}] = {}", s.live_at_entry[i]);
        }
        for (i, live) in s.live_at_exit.iter().enumerate() {
            println!("  live-at-exit[{i}]  = {live}");
        }
        if !s.saved_restored.is_empty() {
            println!("  saves/restores {}", s.saved_restored);
        }
    }
    if let Some(name) = o.routine {
        if program.routine_by_name(name).is_none() {
            return Err(format!("no routine named `{name}`").into());
        }
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("optimize needs an image path".into());
    };
    let program = load(path)?;
    let opt_options = spike_opt::OptOptions {
        analysis: AnalysisOptions { threads: o.threads, ..AnalysisOptions::default() },
        iterate: o.iterate,
        incremental: o.incremental,
        ..spike_opt::OptOptions::default()
    };
    let (optimized, report) = spike_opt::optimize_with(&program, &opt_options)?;
    let out = o.out.ok_or("optimize needs -o <img>")?;
    save(&optimized, out)?;
    println!(
        "{} -> {}: {} -> {} instructions ({} dead, {} spill pairs, {} reallocations)",
        path,
        out,
        report.instructions_before,
        report.instructions_after,
        report.dead_deleted,
        report.spill_pairs_removed,
        report.registers_reallocated
    );
    println!(
        "{} round(s); analysis re-ran {} routine(s), reused {} from cache{}",
        report.rounds,
        report.routines_reanalyzed,
        report.routines_reused,
        if o.incremental { "" } else { " (incremental re-analysis disabled)" }
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("run needs an image path".into());
    };
    let program = load(path)?;
    match spike_sim::run(&program, o.fuel) {
        Outcome::Halted { output, steps } => {
            for v in output {
                println!("{v}");
            }
            eprintln!("halted after {steps} instructions");
            Ok(())
        }
        Outcome::OutOfFuel { .. } => Err(format!("did not halt within {} steps", o.fuel).into()),
        Outcome::Fault(f) => Err(format!("fault: {f}").into()),
        other => Err(format!("unexpected simulator outcome: {other:?}").into()),
    }
}

fn cmd_lint(args: &[String]) -> Result<ExitCode> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("lint needs an image path".into());
    };
    if o.format != "human" && o.format != "json" {
        return Err(format!("--format must be `human` or `json`, got `{}`", o.format).into());
    }
    // A file that cannot be read is a usage problem (exit 2); a file that
    // reads but fails validation is a *finding* (`malformed-image`,
    // exit 1), so an automated caller sees it in the report.
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = match Program::from_image(&bytes) {
        Ok(program) => spike_lint::lint(&program),
        Err(e) => spike_lint::malformed_image(e.to_string()),
    };
    if o.format == "json" {
        println!("{}", report.to_json(Some(path)));
    } else {
        for d in report.diagnostics() {
            println!("{d}");
        }
        println!("{path}: {} error(s), {} warning(s)", report.errors(), report.warnings());
    }
    Ok(if report.errors() > 0 { ExitCode::from(1) } else { ExitCode::SUCCESS })
}

fn dot(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("dot needs an image path".into());
    };
    let program = load(path)?;
    let analysis = analyze(&program);
    let routine = match o.routine {
        Some(name) => Some(
            program.routine_by_name(name).ok_or_else(|| format!("no routine named `{name}`"))?,
        ),
        None => None,
    };
    print!("{}", analysis.psg.to_dot(&program, routine));
    Ok(())
}

fn compare(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("compare needs an image path".into());
    };
    let program = load(path)?;
    let options = AnalysisOptions { threads: o.threads, ..AnalysisOptions::default() };
    let psg = analyze_with(&program, &options);
    let full = spike_baseline::analyze_baseline_with(&program, &options);
    for (rid, r) in program.iter() {
        if psg.summary.routine(rid) != &full.summaries[rid.index()] {
            return Err(format!("summary mismatch for {} — this is a bug", r.name()).into());
        }
    }
    let s = psg.psg.stats();
    let c = full.counts;
    println!("summaries identical for all {} routines", program.routines().len());
    println!(
        "psg: {} nodes / {} edges in {:?}; full cfg: {} blocks / {} arcs in {:?}",
        s.nodes,
        s.edges,
        psg.stats.total(),
        c.basic_blocks,
        c.total_arcs(),
        full.stats.total()
    );
    let _ = ProgramCfg::build(&program);
    Ok(())
}
