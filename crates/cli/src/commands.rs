//! Subcommand implementations for the `spike` binary.

use std::error::Error;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use spike_core::{analyze, analyze_with, AnalysisCache, AnalysisOptions, Query, Representation};
use spike_program::Program;
use spike_serve::render;
use spike_serve::{Command, Endpoint, LintFormat, QueryKind, Request, ServeOptions, Server};
use spike_sim::Outcome;

type Result<T> = std::result::Result<T, Box<dyn Error>>;

const USAGE: &str = "\
usage: spike <command> [options]

commands:
  gen <benchmark> [--scale S] [--seed N] -o <img>   generate a paper-profile image
  gen-exec [--routines K] [--seed N] -o <img>       generate a runnable image
  asm <file.s> -o <img>                             assemble a text module
  disasm <img>                                      disassemble to parseable assembly
  analyze <img> [--summaries] [--routine NAME] [--profile p.prof] [--threads N]
                [--sparse|--dense]                  interprocedural dataflow analysis
                                                    (--profile adds hot/cold routines)
  optimize <img> -o <img> [--threads N] [--iterate] [--profile p.prof] [--no-licm]
           [--incremental|--no-incremental]         apply the Figure-1 optimizations
                                                    plus loop-invariant code motion;
                                                    --profile weights loop and spill
                                                    decisions with measured counts
  run <img> [--fuel N]                              execute under the simulator
  profile <img> [--out p.prof] [--fuel N]           execute with edge/call/routine
                                                    counters and write (or merge into)
                                                    an execution profile
  lint <img> [--format human|json]                  interprocedural static checks
  query <kind> <routine> [<callee>] <img>           demand-driven analysis query
                                                    (summary, live-at-entry, uninit,
                                                    reaches <caller> <callee>)
  compare <img> [--threads N]                       PSG vs whole-CFG comparison
  dot <img> [--routine NAME]                        Program Summary Graph as GraphViz
  profiles                                          list generator benchmarks
  serve [--listen HOST:PORT] [--unix PATH] [--workers N] [--cache-bytes N]
        [--queue N] [--max-frame-bytes N] [--deadline-ms N] [--threads N]
        [--snapshot PATH] [--snapshot-interval-ms N] [--no-reactor]
        [--cluster A,B,C --shard-index I] [--sparse|--dense]
                                                    run the analysis daemon
  route --listen HOST:PORT --cluster A,B,C [--workers N] [--max-frame-bytes N]
                                                    run the cluster routing front
  client <cmd> [args] --connect <HOST:PORT|unix:PATH> [--deadline-ms N]
                                                    run analyze/lint/optimize/query/
                                                    compare/stats/shutdown against a
                                                    daemon; --cluster A,B,C instead of
                                                    --connect routes straight to the
                                                    owning shard
  loadgen --connect HOST:PORT [--connections N] [--inflight N] [--images M]
          [--routines K] [--seed S]                 hold N concurrent connections
                                                    against a daemon and report
                                                    p50/p95/p99 latency as JSON

analyze, optimize, query, compare, and serve solve on the sparse def-use
chain representation by default; --dense selects the dense per-node engine
the sparse one is validated against.
";

/// Parses and executes one invocation. The returned code is the process
/// exit status: commands other than `lint` always exit 0 on success, and
/// `lint` exits 1 when it has error-severity findings (usage and I/O
/// problems exit 2 via the `Err` path).
pub fn dispatch(args: &[String]) -> Result<ExitCode> {
    let ok = |()| ExitCode::SUCCESS;
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("gen") => gen(&args[1..]).map(ok),
        Some("gen-exec") => gen_exec(&args[1..]).map(ok),
        Some("asm") => asm(&args[1..]).map(ok),
        Some("disasm") => disasm(&args[1..]).map(ok),
        Some("analyze") => cmd_analyze(&args[1..]).map(ok),
        Some("optimize") => cmd_optimize(&args[1..]).map(ok),
        Some("run") => cmd_run(&args[1..]).map(ok),
        Some("profile") => cmd_profile(&args[1..]).map(ok),
        Some("lint") => cmd_lint(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("compare") => compare(&args[1..]).map(ok),
        Some("dot") => dot(&args[1..]).map(ok),
        Some("serve") => serve(&args[1..]).map(ok),
        Some("route") => route(&args[1..]).map(ok),
        Some("client") => client(&args[1..]),
        Some("loadgen") => loadgen(&args[1..]).map(ok),
        Some("profiles") => {
            for p in spike_synth::profiles() {
                println!(
                    "{:<10} {:>7} routines {:>9} instructions  {}",
                    p.name, p.routines, p.instructions, p.description
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    }
}

/// Pulls `--flag value` pairs and positionals out of an argument list.
struct Opts<'a> {
    positional: Vec<&'a str>,
    scale: f64,
    seed: u64,
    routines: usize,
    fuel: u64,
    out: Option<&'a str>,
    summaries: bool,
    routine: Option<&'a str>,
    threads: usize,
    iterate: bool,
    incremental: bool,
    licm: bool,
    profile: Option<&'a str>,
    format: &'a str,
    listen: Option<&'a str>,
    unix: Option<&'a str>,
    connect: Option<&'a str>,
    workers: usize,
    cache_bytes: Option<usize>,
    queue: Option<usize>,
    max_frame_bytes: Option<usize>,
    deadline_ms: Option<u64>,
    representation: Representation,
    snapshot: Option<&'a str>,
    snapshot_interval_ms: Option<u64>,
    no_reactor: bool,
    cluster: Vec<String>,
    shard_index: Option<usize>,
    connections: usize,
    inflight: usize,
    images: usize,
}

fn parse(args: &[String]) -> Result<Opts<'_>> {
    let mut o = Opts {
        positional: Vec::new(),
        scale: 0.05,
        seed: 1,
        routines: 6,
        fuel: 10_000_000,
        out: None,
        summaries: false,
        routine: None,
        threads: 0,
        iterate: false,
        incremental: true,
        licm: true,
        profile: None,
        format: "human",
        listen: None,
        unix: None,
        connect: None,
        workers: 0,
        cache_bytes: None,
        queue: None,
        max_frame_bytes: None,
        deadline_ms: None,
        representation: Representation::default(),
        snapshot: None,
        snapshot_interval_ms: None,
        no_reactor: false,
        cluster: Vec::new(),
        shard_index: None,
        connections: 10_000,
        inflight: 32,
        images: 4,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut want = |name: &str| -> Result<&str> {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value").into())
        };
        match a.as_str() {
            "--scale" => o.scale = want("--scale")?.parse()?,
            "--seed" => o.seed = want("--seed")?.parse()?,
            "--routines" => o.routines = want("--routines")?.parse()?,
            "--fuel" => o.fuel = want("--fuel")?.parse()?,
            "-o" | "--out" => o.out = Some(want("-o")?),
            "--summaries" => o.summaries = true,
            "--routine" => o.routine = Some(want("--routine")?),
            "--threads" => o.threads = want("--threads")?.parse()?,
            "--iterate" => o.iterate = true,
            "--incremental" => o.incremental = true,
            "--no-incremental" => o.incremental = false,
            "--no-licm" => o.licm = false,
            "--profile" => o.profile = Some(want("--profile")?),
            "--format" => o.format = want("--format")?,
            "--listen" => o.listen = Some(want("--listen")?),
            "--unix" => o.unix = Some(want("--unix")?),
            "--connect" => o.connect = Some(want("--connect")?),
            "--workers" => o.workers = want("--workers")?.parse()?,
            "--cache-bytes" => o.cache_bytes = Some(want("--cache-bytes")?.parse()?),
            "--queue" => o.queue = Some(want("--queue")?.parse()?),
            "--max-frame-bytes" => o.max_frame_bytes = Some(want("--max-frame-bytes")?.parse()?),
            "--deadline-ms" => o.deadline_ms = Some(want("--deadline-ms")?.parse()?),
            "--snapshot" => o.snapshot = Some(want("--snapshot")?),
            "--snapshot-interval-ms" => {
                o.snapshot_interval_ms = Some(want("--snapshot-interval-ms")?.parse()?)
            }
            "--no-reactor" => o.no_reactor = true,
            "--cluster" => {
                o.cluster = want("--cluster")?.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--shard-index" => o.shard_index = Some(want("--shard-index")?.parse()?),
            "--connections" => o.connections = want("--connections")?.parse()?,
            "--inflight" => o.inflight = want("--inflight")?.parse()?,
            "--images" => o.images = want("--images")?.parse()?,
            "--sparse" => o.representation = Representation::Sparse,
            "--dense" => o.representation = Representation::Dense,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`").into())
            }
            other => o.positional.push(other),
        }
    }
    Ok(o)
}

fn load(path: &str) -> Result<Program> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(Program::from_image(&bytes)?)
}

/// Loads a `--profile` file and verifies it binds to `image`. A stale or
/// corrupt profile is a usage error (exit 2), with the same message the
/// daemon puts in its `bad-request` response.
fn load_profile(path: &str, image: &[u8]) -> Result<spike_profile::Profile> {
    let profile = spike_profile::Profile::load(Path::new(path))
        .map_err(|e| format!("cannot load profile {path}: {e}"))?;
    if !profile.matches(image) {
        return Err(format!(
            "{path}: profile was collected from a different program image (stale profile)"
        )
        .into());
    }
    Ok(profile)
}

fn save(program: &Program, path: &str) -> Result<()> {
    fs::write(path, program.to_image()).map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(())
}

fn gen(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [name] = o.positional[..] else {
        return Err("gen needs a benchmark name (see `spike profiles`)".into());
    };
    let profile =
        spike_synth::profile(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let program = spike_synth::generate(&profile, o.scale, o.seed);
    let out = o.out.ok_or("gen needs -o <img>")?;
    save(&program, out)?;
    println!(
        "wrote {out}: {} routines, {} instructions ({} at scale {})",
        program.routines().len(),
        program.total_instructions(),
        name,
        o.scale
    );
    Ok(())
}

fn gen_exec(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let program = spike_synth::generate_executable(o.seed, o.routines);
    let out = o.out.ok_or("gen-exec needs -o <img>")?;
    save(&program, out)?;
    println!(
        "wrote {out}: {} routines, {} instructions (runnable)",
        program.routines().len(),
        program.total_instructions()
    );
    Ok(())
}

fn asm(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("asm needs a source path".into());
    };
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = spike_asm::parse_asm(&text)?;
    let out = o.out.ok_or("asm needs -o <img>")?;
    save(&program, out)?;
    println!(
        "wrote {out}: {} routines, {} instructions",
        program.routines().len(),
        program.total_instructions()
    );
    Ok(())
}

fn disasm(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("disasm needs an image path".into());
    };
    let program = load(path)?;
    // The output is the assembler's input format: `spike asm` accepts it.
    print!("{}", spike_asm::write_asm(&program));
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("analyze needs an image path".into());
    };
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = Program::from_image(&bytes)?;
    let profile = o.profile.map(|p| load_profile(p, &bytes)).transpose()?;
    let options = AnalysisOptions {
        threads: o.threads,
        representation: o.representation,
        ..AnalysisOptions::default()
    };
    let analysis = analyze_with(&program, &options);
    // Deterministic report on stdout, timing/scheduler diagnostics on
    // stderr — the same renderers the daemon uses, so `spike client
    // analyze` is byte-identical to this path.
    let report = render::analyze_report(path, &program, &analysis, o.summaries, o.routine)?;
    print!("{report}");
    if let Some(p) = &profile {
        print!("{}", render::profile_report(&program, p));
    }
    eprint!("{}", render::analyze_diag(&analysis.stats));
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("optimize needs an image path".into());
    };
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = Program::from_image(&bytes)?;
    let profile = o.profile.map(|p| load_profile(p, &bytes)).transpose()?;
    let pgo = profile.is_some();
    let opt_options = spike_opt::OptOptions {
        analysis: AnalysisOptions {
            threads: o.threads,
            representation: o.representation,
            ..AnalysisOptions::default()
        },
        iterate: o.iterate,
        incremental: o.incremental,
        licm: o.licm,
        profile,
        ..spike_opt::OptOptions::default()
    };
    let (optimized, report) = spike_opt::optimize_with(&program, &opt_options)?;
    let out = o.out.ok_or("optimize needs -o <img>")?;
    save(&optimized, out)?;
    print!("{}", render::optimize_report(path, out, &report, o.incremental, pgo));
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("run needs an image path".into());
    };
    let program = load(path)?;
    match spike_sim::run(&program, o.fuel) {
        Outcome::Halted { output, steps } => {
            for v in output {
                println!("{v}");
            }
            eprintln!("halted after {steps} instructions");
            Ok(())
        }
        Outcome::OutOfFuel { .. } => Err(format!("did not halt within {} steps", o.fuel).into()),
        Outcome::Fault(f) => Err(format!("fault: {f}").into()),
        other => Err(format!("unexpected simulator outcome: {other:?}").into()),
    }
}

fn cmd_profile(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("profile needs an image path".into());
    };
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = Program::from_image(&bytes)?;
    let out = o.out.map(str::to_string).unwrap_or_else(|| format!("{path}.prof"));

    let (outcome, exec) = spike_sim::run_profiled(&program, o.fuel);
    let mut profile = spike_profile::Profile::collect(&program, &exec);

    // A profile file for the same image accumulates: counts from every
    // run add up. A file bound to a *different* image is replaced (its
    // counts are meaningless here), with a note on stderr.
    let mut merged = false;
    if fs::metadata(&out).is_ok() {
        let existing = spike_profile::Profile::load(Path::new(&out))
            .map_err(|e| format!("cannot load existing profile {out}: {e}"))?;
        if existing.matches(&bytes) {
            profile.merge(&existing).map_err(|e| format!("cannot merge into {out}: {e}"))?;
            merged = true;
        } else {
            eprintln!("spike: {out} was collected from a different image; replacing it");
        }
    }
    profile.save(Path::new(&out)).map_err(|e| format!("cannot write {out}: {e}"))?;

    let ending = match &outcome {
        Outcome::Halted { .. } => "halted",
        Outcome::OutOfFuel { .. } => "ran out of fuel",
        Outcome::Fault(_) => "faulted",
        _ => "stopped",
    };
    println!(
        "wrote {out}: {} after {} instructions, {} call(s); {} run(s) recorded{}",
        ending,
        exec.total_steps,
        profile.calls,
        profile.runs,
        if merged { " (merged)" } else { "" }
    );
    Ok(())
}

fn cmd_lint(args: &[String]) -> Result<ExitCode> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("lint needs an image path".into());
    };
    let format = LintFormat::parse(o.format)?;
    // A file that cannot be read is a usage problem (exit 2); a file that
    // reads but fails validation is a *finding* (`malformed-image`,
    // exit 1), so an automated caller sees it in the report.
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = match Program::from_image(&bytes) {
        Ok(program) => spike_lint::lint(&program),
        Err(e) => spike_lint::malformed_image(e.to_string()),
    };
    print!("{}", render::lint_report(path, &report, format));
    Ok(if report.errors() > 0 { ExitCode::from(1) } else { ExitCode::SUCCESS })
}

/// Splits `query`'s positionals into (kind, routine, callee, image),
/// shared by the local and client paths. Only `reaches` takes a callee.
fn query_args<'a>(
    positional: &[&'a str],
) -> Result<(QueryKind, &'a str, Option<&'a str>, &'a str)> {
    let (kind, routine, callee, path) = match *positional {
        [kind, routine, path] => (kind, routine, None, path),
        [kind, routine, callee, path] => (kind, routine, Some(callee), path),
        _ => return Err("query needs: query <kind> <routine> [<callee>] <img>".into()),
    };
    let kind = QueryKind::parse(kind)?;
    match (kind, callee) {
        (QueryKind::Reaches, None) => {
            Err("reaches needs: query reaches <caller> <callee> <img>".into())
        }
        (QueryKind::Reaches, Some(_)) | (_, None) => Ok((kind, routine, callee, path)),
        (_, Some(_)) => {
            Err(format!("only `reaches` takes a callee, `{}` does not", kind.name()).into())
        }
    }
}

fn cmd_query(args: &[String]) -> Result<ExitCode> {
    let o = parse(args)?;
    let (kind, routine, callee, path) = query_args(&o.positional)?;
    let program = load(path)?;
    let rid =
        program.routine_by_name(routine).ok_or_else(|| format!("no routine named `{routine}`"))?;
    let options = AnalysisOptions {
        threads: o.threads,
        representation: o.representation,
        ..AnalysisOptions::default()
    };
    // The cache starts cold, so the engine solves exactly the query's
    // cone — the same demand path the daemon uses for a fresh image.
    let mut cache = AnalysisCache::new(options);
    let (stdout, stats, exit) = match kind {
        QueryKind::Uninit => {
            // Lint-shaped: findings are the report, exit 1 when any are
            // error severity — exactly like `spike lint`, sliced to one
            // routine.
            let (report, stats) = cache.with_uninit_facts(&program, rid, |cfg, summary| {
                spike_lint::uninit_routine(&program, cfg, summary, rid)
            });
            let exit = if report.errors() > 0 { ExitCode::from(1) } else { ExitCode::SUCCESS };
            (render::lint_report(path, &report, LintFormat::Human), stats, exit)
        }
        _ => {
            let query = match kind {
                QueryKind::Summary => Query::Summary(rid),
                QueryKind::LiveAtEntry => Query::LiveAtEntry(rid),
                QueryKind::Reaches => {
                    let callee = callee.expect("query_args requires a callee for reaches");
                    let cid = program
                        .routine_by_name(callee)
                        .ok_or_else(|| format!("no routine named `{callee}`"))?;
                    Query::Reaches { caller: rid, callee: cid }
                }
                QueryKind::Uninit => unreachable!("handled above"),
            };
            let (answer, stats) = cache.query(&program, &query);
            (render::query_report(routine, callee, &answer), stats, ExitCode::SUCCESS)
        }
    };
    print!("{stdout}");
    eprint!("{}", render::query_diag(&stats));
    Ok(exit)
}

fn dot(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("dot needs an image path".into());
    };
    let program = load(path)?;
    let analysis = analyze(&program);
    let routine = match o.routine {
        Some(name) => Some(
            program.routine_by_name(name).ok_or_else(|| format!("no routine named `{name}`"))?,
        ),
        None => None,
    };
    print!("{}", analysis.psg.to_dot(&program, routine));
    Ok(())
}

fn compare(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let [path] = o.positional[..] else {
        return Err("compare needs an image path".into());
    };
    let program = load(path)?;
    let options = AnalysisOptions {
        threads: o.threads,
        representation: o.representation,
        ..AnalysisOptions::default()
    };
    let psg = analyze_with(&program, &options);
    let full = spike_baseline::analyze_baseline_with(&program, &options);
    let report = render::compare_report(&program, &psg, &full)?;
    print!("{report}");
    eprint!("{}", render::compare_diag(&psg, &full));
    Ok(())
}

fn serve(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let mut options = ServeOptions {
        tcp: o.listen.map(str::to_string),
        unix: o.unix.map(PathBuf::from),
        workers: o.workers,
        analysis_threads: o.threads,
        analysis_representation: o.representation,
        ..ServeOptions::default()
    };
    if let Some(n) = o.cache_bytes {
        options.cache_bytes = n;
    }
    if let Some(n) = o.queue {
        options.queue_capacity = n;
    }
    if let Some(n) = o.max_frame_bytes {
        options.max_frame_bytes = n;
    }
    if let Some(n) = o.deadline_ms {
        options.default_deadline_ms = n;
    }
    options.snapshot = o.snapshot.map(PathBuf::from);
    options.snapshot_interval_ms = o.snapshot_interval_ms;
    if o.no_reactor {
        options.event_driven = false;
    }
    options.cluster = o.cluster.clone();
    options.shard_index = o.shard_index;
    #[cfg(unix)]
    spike_serve::server::install_sigterm_handler();
    let server = Server::start(&options)?;
    if let Some(addr) = server.tcp_addr() {
        eprintln!("spike: serving on tcp {addr}");
    }
    if let Some(path) = &options.unix {
        eprintln!("spike: serving on unix {}", path.display());
    }
    // Returns once a `shutdown` command or SIGTERM drains the daemon;
    // all accepted requests have been answered.
    server.run_to_completion();
    Ok(())
}

fn route(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let options = spike_serve::RouterOptions {
        listen: o.listen.ok_or("route needs --listen HOST:PORT")?.to_string(),
        shards: o.cluster.clone(),
        max_frame_bytes: o
            .max_frame_bytes
            .unwrap_or_else(|| spike_serve::RouterOptions::default().max_frame_bytes),
        workers: if o.workers == 0 {
            spike_serve::RouterOptions::default().workers
        } else {
            o.workers
        },
    };
    if options.shards.is_empty() {
        return Err("route needs --cluster A,B,C (the shard addresses)".into());
    }
    #[cfg(unix)]
    spike_serve::server::install_sigterm_handler();
    let router = spike_serve::Router::start(&options)?;
    eprintln!("spike: routing on tcp {} over {} shard(s)", router.addr(), options.shards.len());
    // Returns on SIGTERM; in-flight relays finish first.
    router.run_to_completion();
    Ok(())
}

fn loadgen(args: &[String]) -> Result<()> {
    let o = parse(args)?;
    let options = spike_serve::loadgen::LoadgenOptions {
        connect: o.connect.ok_or("loadgen needs --connect HOST:PORT")?.to_string(),
        connections: o.connections,
        inflight: o.inflight,
    };
    let images: Vec<Vec<u8>> = (0..o.images.max(1))
        .map(|i| spike_synth::generate_executable(o.seed ^ i as u64, o.routines).to_image())
        .collect();
    eprintln!(
        "spike: loadgen {} connections ({} in flight) against {}",
        options.connections, options.inflight, options.connect
    );
    let report = spike_serve::loadgen::run(&options, &images)
        .map_err(|e| -> Box<dyn Error> { format!("loadgen: {e}").into() })?;
    eprintln!(
        "spike: {} ok, {} errors, p50 {} us, p95 {} us, p99 {} us",
        report.ok, report.errors, report.p50_us, report.p95_us, report.p99_us
    );
    let mut out = String::new();
    report.to_json().write(&mut out);
    println!("{out}");
    if report.errors > 0 {
        return Err(format!("loadgen saw {} failed requests", report.errors).into());
    }
    Ok(())
}

fn client(args: &[String]) -> Result<ExitCode> {
    let Some(sub) = args.first().map(String::as_str) else {
        return Err(
            "client needs a subcommand (analyze, lint, optimize, query, compare, stats, shutdown)"
                .into(),
        );
    };
    let o = parse(&args[1..])?;
    // `--connect` names one daemon; `--cluster` lists every shard and
    // the client computes the owning shard itself (no router hop).
    let endpoint = match o.connect {
        Some(c) => Some(Endpoint::parse(c)?),
        None if !o.cluster.is_empty() => None,
        None => {
            return Err("client needs --connect <HOST:PORT|unix:PATH> or --cluster A,B,C".into())
        }
    };

    let image_path = |what: &str| -> Result<&str> {
        match o.positional[..] {
            [path] => Ok(path),
            _ => Err(format!("{what} needs an image path").into()),
        }
    };
    let (cmd, path) = match sub {
        "analyze" => (
            Command::Analyze { summaries: o.summaries, routine: o.routine.map(str::to_string) },
            Some(image_path("analyze")?),
        ),
        "lint" => {
            (Command::Lint { format: LintFormat::parse(o.format)? }, Some(image_path("lint")?))
        }
        "optimize" => {
            let out = o.out.ok_or("optimize needs -o <img>")?;
            (
                Command::Optimize {
                    out: out.to_string(),
                    iterate: o.iterate,
                    incremental: o.incremental,
                    licm: o.licm,
                },
                Some(image_path("optimize")?),
            )
        }
        "query" => {
            let (kind, routine, callee, path) = query_args(&o.positional)?;
            (
                Command::Query {
                    kind,
                    routine: routine.to_string(),
                    callee: callee.map(str::to_string),
                },
                Some(path),
            )
        }
        "compare" => (Command::Compare, Some(image_path("compare")?)),
        "stats" => (Command::Stats, None),
        "shutdown" => (Command::Shutdown, None),
        other => return Err(format!("unknown client subcommand `{other}`").into()),
    };

    // The image is read client-side: an unreadable file fails here with
    // the same message and exit code (2) as the local commands. A
    // `--profile` file rides in the same frame blob, after the image;
    // it is validated client-side too, so a stale profile fails with the
    // local path's message before any bytes go over the wire.
    let mut blob = match path {
        Some(p) => fs::read(p).map_err(|e| format!("cannot read {p}: {e}"))?,
        None => Vec::new(),
    };
    let mut profile_len = 0;
    if let Some(ppath) = o.profile {
        let profile_bytes = load_profile(ppath, &blob)?.to_bytes();
        profile_len = profile_bytes.len();
        blob.extend_from_slice(&profile_bytes);
    }
    let request = Request {
        cmd,
        image_name: path.unwrap_or_default().to_string(),
        deadline_ms: o.deadline_ms,
        profile_len,
    };
    let (response, blob) = match &endpoint {
        Some(endpoint) => spike_serve::client::request(endpoint, &request, &blob)?,
        None => spike_serve::cluster::cluster_request(&o.cluster, &request, &blob)?,
    };
    if let Some((kind, message)) = &response.error {
        eprint!("{}", response.diag);
        return Err(format!("daemon refused request ({}): {message}", kind.name()).into());
    }
    if let Command::Optimize { .. } = request.cmd {
        let out = o.out.expect("checked above");
        fs::write(out, &blob).map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    // Report bytes exactly as the local path would print them; daemon
    // diagnostics (timings, cache disposition) go to stderr.
    print!("{}", response.stdout);
    eprint!("{}", response.diag);
    Ok(ExitCode::from(response.exit))
}
