//! `spike` — the command-line front end of the post-link optimizer.
//!
//! ```text
//! spike gen <benchmark> [--scale S] [--seed N] -o prog.img
//! spike gen-exec [--routines K] [--seed N] -o prog.img
//! spike disasm <img>
//! spike analyze <img> [--summaries] [--routine NAME]
//! spike optimize <img> -o out.img
//! spike run <img> [--fuel N]
//! spike lint <img> [--format human|json]
//! spike compare <img>
//! spike serve --unix /tmp/spike.sock
//! spike client lint <img> --connect unix:/tmp/spike.sock
//! ```
//!
//! Exit codes: 0 on success (for `lint`: no error-severity findings),
//! 1 when `lint` reports errors, 2 on usage or I/O problems. `client`
//! relays the daemon's exit code (so `client lint` still exits 1 on
//! findings) and exits 2 on connect or protocol failures.

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
