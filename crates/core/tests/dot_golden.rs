//! Golden-file test for the GraphViz rendering of the Program Summary
//! Graph, over the paper's Figure 2 example (P1/P2/P3). The dot output is
//! consumed by external tooling and by the README's visualization
//! instructions, so its exact shape is pinned: if a change to PSG
//! construction or to `to_dot` alters it, the diff shows up here for
//! review instead of silently changing downstream renders.
//!
//! To regenerate after an intentional change:
//! `UPDATE_GOLDEN=1 cargo test -p spike-core --test dot_golden`

use spike_core::analyze;
use spike_isa::{BranchCond, Reg};
use spike_program::{Program, ProgramBuilder};

const R0: Reg = Reg::V0;
const R1: Reg = Reg::T0;
const R2: Reg = Reg::T1;
const R3: Reg = Reg::T2;

/// Figure 2 of the paper, identical to `paper_example.rs`.
fn figure2_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.routine("p1").def(R0).def(R1).call("p2").use_reg(R0).ret();
    b.routine("p2")
        .cond(BranchCond::Eq, R1, "else")
        .def(R2)
        .def(R3)
        .br("join")
        .label("else")
        .def(R2)
        .label("join")
        .ret();
    b.routine("p3").def(R1).call("p2").ret();
    b.set_entry("p1");
    b.build().unwrap()
}

fn check(rendered: &str, golden_name: &str) {
    let path = format!("{}/tests/golden/{golden_name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (set UPDATE_GOLDEN=1 to create)"));
    assert_eq!(
        rendered, golden,
        "PSG dot output drifted from {golden_name}; if intentional, regenerate with \
         UPDATE_GOLDEN=1"
    );
}

#[test]
fn whole_program_psg_dot_matches_golden() {
    let program = figure2_program();
    let analysis = analyze(&program);
    check(&analysis.psg.to_dot(&program, None), "figure2_psg.dot");
}

#[test]
fn single_routine_psg_dot_matches_golden() {
    let program = figure2_program();
    let analysis = analyze(&program);
    let p2 = program.routine_by_name("p2").unwrap();
    check(&analysis.psg.to_dot(&program, Some(p2)), "figure2_p2.dot");
}
