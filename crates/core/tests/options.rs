//! Behaviour of the analysis options and less-common program shapes:
//! multiple entrances, exported-exit policies, and option interactions.

use spike_core::{analyze, analyze_with, AnalysisOptions};
use spike_isa::{CallingStandard, Reg, RegSet};
use spike_program::ProgramBuilder;

/// A routine with two entrances gets two independent summaries, and each
/// call site uses the one for the entrance it targets.
#[test]
fn alternate_entrances_have_their_own_summaries() {
    let mut b = ProgramBuilder::new();
    b.routine("main")
        .call("dual") // primary entrance
        .call("dual:fast") // alternate entrance
        .halt();
    b.routine("dual")
        .use_reg(Reg::A0) // only on the primary path
        .def(Reg::T0)
        .label("fast")
        .alt_entry("fast")
        .def(Reg::V0)
        .ret();
    let p = b.build().unwrap();
    let analysis = analyze(&p);
    let dual = p.routine_by_name("dual").unwrap();
    let s = analysis.summary.routine(dual);

    assert_eq!(s.call_used.len(), 2);
    // The primary entrance reads a0; the fast entrance does not.
    assert!(s.call_used[0].contains(Reg::A0));
    assert!(!s.call_used[1].contains(Reg::A0));
    // Both must define v0; only the primary also defines t0.
    assert!(s.call_defined[0].contains(Reg::T0));
    assert!(s.call_defined[0].contains(Reg::V0));
    assert!(!s.call_defined[1].contains(Reg::T0));
    assert!(s.call_defined[1].contains(Reg::V0));

    // Per-call-site summaries pick the right entrance.
    let main = p.routine_by_name("main").unwrap();
    let cfg = analysis.cfg.routine_cfg(main);
    let calls: Vec<_> = cfg.call_blocks().collect();
    let first = analysis.summary.call_site(&analysis.cfg, main, calls[0]).unwrap();
    let second = analysis.summary.call_site(&analysis.cfg, main, calls[1]).unwrap();
    assert!(first.used.contains(Reg::A0));
    assert!(!second.used.contains(Reg::A0));
}

/// The exported-exit policy is configurable: an empty policy means even
/// exported routines owe nothing to their unseen callers.
#[test]
fn exported_live_at_exit_policy_is_configurable() {
    let mut b = ProgramBuilder::new();
    b.routine("main").halt();
    b.routine("api").export().def(Reg::V0).ret();
    let p = b.build().unwrap();
    let api = p.routine_by_name("api").unwrap();

    let default = analyze(&p);
    assert!(
        default.summary.routine(api).live_at_exit[0].contains(Reg::V0),
        "default policy: unseen callers may read the return value"
    );

    let lax =
        AnalysisOptions { exported_live_at_exit: RegSet::EMPTY, ..AnalysisOptions::default() };
    let analysis = analyze_with(&p, &lax);
    assert_eq!(analysis.summary.routine(api).live_at_exit[0], RegSet::EMPTY);

    let strict =
        AnalysisOptions { exported_live_at_exit: RegSet::ALL, ..AnalysisOptions::default() };
    let analysis = analyze_with(&p, &strict);
    assert_eq!(analysis.summary.routine(api).live_at_exit[0], RegSet::ALL);
}

/// The program entry routine is treated as externally callable even
/// without the export flag.
#[test]
fn entry_routine_is_externally_callable() {
    let mut b = ProgramBuilder::new();
    b.routine("lib").ret();
    b.routine("start").def(Reg::V0).ret();
    b.set_entry("start");
    let p = b.build().unwrap();
    let analysis = analyze(&p);
    let start = p.routine_by_name("start").unwrap();
    let lib = p.routine_by_name("lib").unwrap();
    assert!(analysis.summary.routine(start).live_at_exit[0].contains(Reg::V0));
    // The uncalled, unexported library routine owes nothing.
    assert_eq!(analysis.summary.routine(lib).live_at_exit[0], RegSet::EMPTY);
}

/// The calling standard itself is injectable; §3.5 unknown-call
/// assumptions follow it.
#[test]
fn calling_standard_drives_unknown_call_assumptions() {
    let mut b = ProgramBuilder::new();
    b.routine("main").lda(Reg::PV, Reg::ZERO, 1).jsr_unknown(Reg::PV).halt();
    let p = b.build().unwrap();
    let analysis = analyze(&p);
    let std = CallingStandard::alpha_nt();
    let main = p.routine_by_name("main").unwrap();
    let cfg = analysis.cfg.routine_cfg(main);
    let call = cfg.call_blocks().next().unwrap();
    let cs = analysis.summary.call_site(&analysis.cfg, main, call).unwrap();
    assert_eq!(cs.used, std.unknown_call_used());
    assert_eq!(cs.defined, std.unknown_call_defined());
    assert_eq!(cs.killed, std.unknown_call_killed());
}

/// Indirect calls with a recovered multi-target set meet over targets:
/// union of uses/kills, intersection of must-defines.
#[test]
fn multi_target_call_sites_meet_over_targets() {
    let mut b = ProgramBuilder::new();
    b.routine("main").lda(Reg::PV, Reg::ZERO, 1).jsr_known(Reg::PV, &["a", "b"]).halt();
    b.routine("a").use_reg(Reg::A0).def(Reg::V0).def(Reg::T0).ret();
    b.routine("b").use_reg(Reg::A1).def(Reg::V0).ret();
    let p = b.build().unwrap();
    let analysis = analyze(&p);
    let main = p.routine_by_name("main").unwrap();
    let cfg = analysis.cfg.routine_cfg(main);
    let call = cfg.call_blocks().next().unwrap();
    let cs = analysis.summary.call_site(&analysis.cfg, main, call).unwrap();

    assert!(cs.used.contains(Reg::A0) && cs.used.contains(Reg::A1), "union of uses");
    assert!(cs.killed.contains(Reg::T0), "union of kills");
    assert!(cs.defined.contains(Reg::V0), "both must define v0");
    assert!(!cs.defined.contains(Reg::T0), "only `a` defines t0");
}
