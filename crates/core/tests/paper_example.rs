//! The paper's worked example: routines P1, P2, P3 of Figure 2, with the
//! exact dataflow sets stated in §2, §3.2 (Figure 9) and §3.3 (Figure 11).
//!
//! The paper uses abstract registers R0–R3; we map them to `v0`, `t0`,
//! `t1`, `t2` and compare set intersections with that universe, since the
//! real ISA also tracks `ra` (defined by `bsr`, read by `ret`) and the
//! calling-standard registers seeded at externally callable exits.

use spike_core::analyze;
use spike_isa::{BranchCond, Reg, RegSet};
use spike_program::{Program, ProgramBuilder, RoutineId};

const R0: Reg = Reg::V0; // v0
const R1: Reg = Reg::T0; // t0
const R2: Reg = Reg::T1; // t1
const R3: Reg = Reg::T2; // t2

fn paper_regs() -> RegSet {
    RegSet::of(&[R0, R1, R2, R3])
}

/// Figure 2:
/// * P1: defines R0 and R1, calls P2, then uses R0.
/// * P2: uses R1, then on one path defines R2 and R3, on the other only
///   R2.
/// * P3: defines R1, calls P2.
fn figure2_program() -> (Program, RoutineId, RoutineId, RoutineId) {
    let mut b = ProgramBuilder::new();
    b.routine("p1").def(R0).def(R1).call("p2").use_reg(R0).ret();
    b.routine("p2")
        .cond(BranchCond::Eq, R1, "else") // use R1
        .def(R2)
        .def(R3)
        .br("join")
        .label("else")
        .def(R2)
        .label("join")
        .ret();
    b.routine("p3").def(R1).call("p2").ret();
    b.set_entry("p1");
    let p = b.build().unwrap();
    let p1 = p.routine_by_name("p1").unwrap();
    let p2 = p.routine_by_name("p2").unwrap();
    let p3 = p.routine_by_name("p3").unwrap();
    (p, p1, p2, p3)
}

/// §3.2 / Figure 9: the phase-1 results for every entry node.
#[test]
fn phase1_sets_match_section_3_2() {
    let (program, p1, p2, p3) = figure2_program();
    let analysis = analyze(&program);
    let universe = paper_regs();

    // MAY-USE[P1] = ∅, MAY-DEF[P1] = {R0,R1,R2,R3}, MUST-DEF[P1] = {R0,R1,R2}.
    let s1 = analysis.summary.routine(p1);
    assert_eq!(s1.call_used[0] & universe, RegSet::EMPTY);
    assert_eq!(s1.call_killed[0] & universe, RegSet::of(&[R0, R1, R2, R3]));
    assert_eq!(s1.call_defined[0] & universe, RegSet::of(&[R0, R1, R2]));

    // MAY-USE[P2] = {R1}, MAY-DEF[P2] = {R2,R3}, MUST-DEF[P2] = {R2}.
    let s2 = analysis.summary.routine(p2);
    assert_eq!(s2.call_used[0] & universe, RegSet::of(&[R1]));
    assert_eq!(s2.call_killed[0] & universe, RegSet::of(&[R2, R3]));
    assert_eq!(s2.call_defined[0] & universe, RegSet::of(&[R2]));

    // MAY-USE[P3] = ∅, MAY-DEF[P3] = {R1,R2,R3}, MUST-DEF[P3] = {R1,R2}.
    let s3 = analysis.summary.routine(p3);
    assert_eq!(s3.call_used[0] & universe, RegSet::EMPTY);
    assert_eq!(s3.call_killed[0] & universe, RegSet::of(&[R1, R2, R3]));
    assert_eq!(s3.call_defined[0] & universe, RegSet::of(&[R1, R2]));
}

/// §2 / Figure 11: live-at-entry and live-at-exit for P2. R0 is live
/// through P2 because a return path from P2 leads to a use of R0 in P1.
#[test]
fn phase2_liveness_matches_section_2() {
    let (program, _, p2, _) = figure2_program();
    let analysis = analyze(&program);
    let universe = paper_regs();

    let s2 = analysis.summary.routine(p2);
    assert_eq!(s2.live_at_entry[0] & universe, RegSet::of(&[R0, R1]));
    assert_eq!(s2.live_at_exit[0] & universe, RegSet::of(&[R0]));
}

/// §2's call-summary instruction for a call to P2: uses R1, defines R2,
/// kills R2 and R3 (Figure 3).
#[test]
fn call_summary_for_p2_matches_figure_3() {
    let (program, p1, _, _) = figure2_program();
    let analysis = analyze(&program);
    let universe = paper_regs();

    // P1's single call block.
    let cfg1 = analysis.cfg.routine_cfg(p1);
    let call_block = cfg1.call_blocks().next().expect("p1 calls p2");
    let cs = analysis
        .summary
        .call_site(&analysis.cfg, p1, call_block)
        .expect("call block has a summary");
    assert_eq!(cs.used & universe, RegSet::of(&[R1]));
    assert_eq!(cs.defined & universe, RegSet::of(&[R2]));
    assert_eq!(cs.killed & universe, RegSet::of(&[R2, R3]));
}

/// Liveness is a meet over *valid* paths (§5): registers live at P1's
/// return point must not leak to P3's return point through P2.
#[test]
fn liveness_respects_valid_paths_only() {
    let (program, p1, _, p3) = figure2_program();
    let analysis = analyze(&program);

    // R0 is live across P1's call (used after it) but must not appear
    // live at P3's return point: a path entering P2 from P3 cannot return
    // to P1.
    let cfg3 = analysis.cfg.routine_cfg(p3);
    let call_block = cfg3.call_blocks().next().expect("p3 calls p2");
    let rn3 = analysis.psg.routine_nodes(p3);
    let &(_, _, ret_node) =
        rn3.calls().iter().find(|(b, _, _)| *b == call_block).expect("call node exists");
    assert!(
        !analysis.psg.live(ret_node).contains(R0),
        "R0 leaked to P3's return point: live = {}",
        analysis.psg.live(ret_node)
    );

    // And R0 *is* live at P1's return point.
    let rn1 = analysis.psg.routine_nodes(p1);
    let &(_, _, p1_ret) = &rn1.calls()[0];
    assert!(analysis.psg.live(p1_ret).contains(R0));
}

/// The PSG for Figure 2 has the node inventory of Figure 9: one entry and
/// one exit per routine, one call/return pair in P1 and P3.
#[test]
fn figure9_node_inventory() {
    let (program, p1, p2, p3) = figure2_program();
    let analysis = analyze(&program);
    for (rid, entries, exits, calls) in [(p1, 1, 1, 1), (p2, 1, 1, 0), (p3, 1, 1, 1)] {
        let rn = analysis.psg.routine_nodes(rid);
        assert_eq!(rn.entries().len(), entries, "{rid} entries");
        assert_eq!(rn.exits().len(), exits, "{rid} exits");
        assert_eq!(rn.calls().len(), calls, "{rid} calls");
    }
    let _ = program;
}
