//! GraphViz export of the Program Summary Graph, for debugging and for
//! papers-style figures (the crate's rendering of Figure 7/9/11).

use std::fmt::Write as _;

use spike_program::{Program, RoutineId};

use crate::psg::{EdgeKind, NodeId, NodeKind, Psg};

impl Psg {
    /// Renders the PSG (or one routine of it) in GraphViz `dot` syntax.
    ///
    /// Nodes show their kind and, once the phases have run, their
    /// `MAY-USE`/`MAY-DEF`/`MUST-DEF` sets; edges show their labels.
    /// Call-return edges are dashed, like the figures in the paper.
    pub fn to_dot(&self, program: &Program, routine: Option<RoutineId>) -> String {
        let mut out = String::new();
        writeln!(out, "digraph psg {{").unwrap();
        writeln!(out, "  rankdir=TB; node [shape=box, fontname=\"monospace\"];").unwrap();

        let wanted = |n: NodeId| routine.is_none_or(|r| self.node(n).routine() == r);

        for (i, kind) in self.nodes().iter().enumerate() {
            let n = NodeId::from_index(i);
            if !wanted(n) {
                continue;
            }
            let rname = program.routine(kind.routine()).name();
            let label = match kind {
                NodeKind::Entry { index, .. } => format!("{rname} entry {index}"),
                NodeKind::Exit { index, .. } => format!("{rname} exit {index}"),
                NodeKind::Call { block, .. } => format!("{rname} call @{block}"),
                NodeKind::Return { block, .. } => format!("{rname} return @{block}"),
                NodeKind::Branch { block, .. } => format!("{rname} branch @{block}"),
                NodeKind::Halt { block, .. } => format!("{rname} halt @{block}"),
                NodeKind::UnknownJump { block, .. } => format!("{rname} unknown-jump @{block}"),
                NodeKind::Diverge { .. } => format!("{rname} diverge"),
            };
            writeln!(
                out,
                "  n{i} [label=\"{label}\\nmu={} md={}\\nmust={}\"];",
                self.may_use(n),
                self.may_def(n),
                self.must_def(n),
            )
            .unwrap();
        }

        for edge in self.edges() {
            if !wanted(edge.from()) {
                continue;
            }
            let style = match edge.kind() {
                EdgeKind::FlowSummary => "solid",
                EdgeKind::CallReturn => "dashed",
            };
            writeln!(
                out,
                "  n{} -> n{} [style={style}, label=\"mu={} md={} must={}\"];",
                edge.from().index(),
                edge.to().index(),
                edge.may_use(),
                edge.may_def(),
                edge.must_def(),
            )
            .unwrap();
        }
        writeln!(out, "}}").unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    #[test]
    fn dot_contains_nodes_edges_and_sets() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("f").put_int().halt();
        b.routine("f").use_reg(Reg::A0).def(Reg::V0).ret();
        let p = b.build().unwrap();
        let analysis = crate::analyze(&p);
        let dot = analysis.psg.to_dot(&p, None);
        assert!(dot.starts_with("digraph psg {"));
        assert!(dot.contains("main entry 0"));
        assert!(dot.contains("f exit 0"));
        assert!(dot.contains("style=dashed"), "call-return edges are dashed");
        assert!(dot.contains("mu={a0"), "callee may-use is labeled");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_can_filter_to_one_routine() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").halt();
        b.routine("f").ret();
        let p = b.build().unwrap();
        let analysis = crate::analyze(&p);
        let f = p.routine_by_name("f").unwrap();
        let dot = analysis.psg.to_dot(&p, Some(f));
        assert!(dot.contains("f entry 0"));
        assert!(!dot.contains("main call"));
    }
}
