//! Detection of saved-and-restored callee-saved registers (§3.4).
//!
//! The Alpha/NT calling standard requires a routine to save a callee-saved
//! register before using it and restore it before exiting. As seen by a
//! caller, such a register is not used, killed, or defined by the call, so
//! phase 1 strips these registers from a routine's summary sets before
//! propagating them to call sites.
//!
//! Detection is structural, mirroring what a post-link optimizer can prove
//! from the code alone: a register counts as *saved* if every entrance
//! stores it to the stack frame before any other definition or use, and as
//! *restored* if every exit block reloads it from the frame before the
//! `ret`. Anything the detector cannot prove is left unfiltered, which is
//! conservative (the register then simply appears call-killed).

use spike_cfg::RoutineCfg;
use spike_isa::{CallingStandard, Instruction, Reg, RegSet};
use spike_program::Program;

/// Returns the callee-saved registers that `cfg`'s routine provably saves
/// on every entrance and restores on every exit.
///
/// A routine with an unrecoverable indirect jump (§3.5) gets the empty
/// set: control may leave without running any epilogue.
pub fn saved_restored_registers(
    program: &Program,
    cfg: &RoutineCfg,
    callstd: &CallingStandard,
) -> RegSet {
    if !cfg.unknown_jumps().is_empty() {
        return RegSet::EMPTY;
    }
    if cfg.exits().is_empty() {
        // No `ret`: nothing is ever restored.
        return RegSet::EMPTY;
    }
    let routine = program.routine(cfg.routine());

    // Saved: intersect over entrances the registers stored to the frame
    // before any definition or use.
    let mut saved = callstd.callee_saved();
    for &entry in cfg.entries() {
        let block = cfg.block(entry);
        let mut touched = RegSet::EMPTY; // defined or used other than by the save
        let mut saved_here = RegSet::EMPTY;
        for addr in block.start()..block.end() {
            let insn = routine.insn_at(addr).expect("block address in routine");
            if let Instruction::Store { rs, base: Reg::SP, .. } = *insn {
                if callstd.callee_saved().contains(rs) && !touched.contains(rs) {
                    saved_here.insert(rs);
                    touched.insert(Reg::SP); // `sp` use is fine; mark nothing else
                    continue;
                }
            }
            touched |= insn.uses() | insn.defs();
        }
        saved &= saved_here;
        if saved.is_empty() {
            return RegSet::EMPTY;
        }
    }

    // Restored: intersect over exits the registers reloaded from the frame
    // with no later definition or use before the `ret`.
    let mut restored = saved;
    for &exit in cfg.exits() {
        let block = cfg.block(exit);
        let mut restored_here = RegSet::EMPTY;
        for addr in block.start()..block.end() {
            let insn = routine.insn_at(addr).expect("block address in routine");
            if let Instruction::Load { rd, base: Reg::SP, .. } = *insn {
                if restored.contains(rd) {
                    restored_here.insert(rd);
                    continue;
                }
            }
            // A later def or use (other than the final ret) invalidates the
            // restore.
            restored_here -= insn.defs() | insn.uses();
        }
        restored &= restored_here;
        if restored.is_empty() {
            return RegSet::EMPTY;
        }
    }

    restored
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::{BranchCond, MemWidth};
    use spike_program::ProgramBuilder;

    fn detect(build: impl FnOnce(&mut spike_program::RoutineBuilder)) -> RegSet {
        let mut b = ProgramBuilder::new();
        build(b.routine("f"));
        let p = b.build().unwrap();
        let cfg = RoutineCfg::build(&p, p.routine_by_name("f").unwrap());
        saved_restored_registers(&p, &cfg, &CallingStandard::alpha_nt())
    }

    fn save(r: &mut spike_program::RoutineBuilder, reg: Reg, slot: i16) {
        r.insn(Instruction::Store { width: MemWidth::Q, rs: reg, base: Reg::SP, disp: slot });
    }

    fn restore(r: &mut spike_program::RoutineBuilder, reg: Reg, slot: i16) {
        r.insn(Instruction::Load { width: MemWidth::Q, rd: reg, base: Reg::SP, disp: slot });
    }

    #[test]
    fn classic_prologue_epilogue_is_detected() {
        let s = detect(|r| {
            save(r, Reg::S0, 0);
            save(r, Reg::S1, 8);
            r.def(Reg::S0).def(Reg::S1).use_reg(Reg::S0);
            restore(r, Reg::S0, 0);
            restore(r, Reg::S1, 8);
            r.ret();
        });
        assert_eq!(s, RegSet::of(&[Reg::S0, Reg::S1]));
    }

    #[test]
    fn save_without_restore_is_not_filtered() {
        let s = detect(|r| {
            save(r, Reg::S0, 0);
            r.def(Reg::S0).ret();
        });
        assert_eq!(s, RegSet::EMPTY);
    }

    #[test]
    fn use_before_save_is_not_filtered() {
        let s = detect(|r| {
            r.use_reg(Reg::S0);
            save(r, Reg::S0, 0);
            restore(r, Reg::S0, 0);
            r.ret();
        });
        assert_eq!(s, RegSet::EMPTY);
    }

    #[test]
    fn every_exit_must_restore() {
        // Two exits; only one restores s0.
        let s = detect(|r| {
            save(r, Reg::S0, 0);
            r.cond(BranchCond::Eq, Reg::A0, "other");
            restore(r, Reg::S0, 0);
            r.ret();
            r.label("other");
            r.ret();
        });
        assert_eq!(s, RegSet::EMPTY);
    }

    #[test]
    fn redefinition_after_restore_invalidates() {
        let s = detect(|r| {
            save(r, Reg::S0, 0);
            restore(r, Reg::S0, 0);
            r.def(Reg::S0); // clobbered again after the restore
            r.ret();
        });
        assert_eq!(s, RegSet::EMPTY);
    }

    #[test]
    fn temporaries_are_never_reported() {
        let s = detect(|r| {
            save(r, Reg::T0, 0); // a store of a temporary is just a store
            restore(r, Reg::T0, 0);
            r.ret();
        });
        assert_eq!(s, RegSet::EMPTY);
    }

    #[test]
    fn unknown_jump_disables_filtering() {
        let s = detect(|r| {
            save(r, Reg::S0, 0);
            r.cond(BranchCond::Eq, Reg::A0, "out");
            r.insn(Instruction::Jmp { base: Reg::T0 }); // no table
            r.label("out");
            restore(r, Reg::S0, 0);
            r.ret();
        });
        assert_eq!(s, RegSet::EMPTY);
    }

    #[test]
    fn multiple_entrances_all_need_the_save() {
        let mut b = ProgramBuilder::new();
        {
            let r = b.routine("f");
            save(r, Reg::S0, 0);
            r.label("alt").alt_entry("alt");
            r.def(Reg::S0);
            restore(r, Reg::S0, 0);
            r.ret();
        }
        let p = b.build().unwrap();
        let cfg = RoutineCfg::build(&p, p.routine_by_name("f").unwrap());
        // The alternate entrance skips the save.
        assert_eq!(saved_restored_registers(&p, &cfg, &CallingStandard::alpha_nt()), RegSet::EMPTY);
    }
}
