//! Demand-driven queries: solve only the cone of the call graph a
//! single question actually depends on.
//!
//! The whole-program engine ([`crate::analyze_with`]) always converges
//! both phases over every routine, so an interactive question about one
//! routine — its entry summary, its liveness, one lint check — pays the
//! full gcc-scale solve. But the two phases have *strictly directional*
//! interprocedural flow over the call-graph condensation:
//!
//! * **Phase 1** (summaries, §3.2) flows callee→caller only: a
//!   routine's `MAY-USE`/`MAY-DEF`/`MUST-DEF` entry values depend on
//!   nothing outside the *callee closure* of its component.
//! * **Phase 2** (liveness, §3.3) flows caller→callee only: a
//!   routine's `LIVE` values depend on the *caller closure* of its
//!   component — plus, because phase 2 warm-starts from the phase-1
//!   `MAY-USE` fixpoint and reads call-return labels, on phase 1 over
//!   the callee closure of that caller closure.
//!
//! [`QueryEngine`] therefore builds the front end once (CFGs, PSG,
//! [`SccSchedule`]), runs the cheap intra-routine phase-1 prologue, and
//! then solves per-component fixpoints *on demand*: a query walks the
//! condensation to collect its cone, solves only the components of the
//! cone that no earlier query has solved (bottom-up for phase 1,
//! top-down for phase 2, using the same component solvers as the full
//! scheduled engine), and memoizes the result per component.
//!
//! **Exactness.** Per component, the demand solve is the full engine's
//! solve: when a component is scheduled, every component it reads
//! across the boundary (callee components in phase 1, caller
//! components in phase 2) lies in the cone and has already converged,
//! and the component solvers write only their own component's values.
//! By induction along the cone order, every solved component holds
//! exactly the values the whole-program fixpoint assigns it — the
//! least fixpoint of a monotone system is unique — so query answers
//! are bit-identical to the corresponding slice of
//! [`crate::analyze_with`]'s solution (property-tested against the
//! dense engine in `tests/prop_query.rs`). For the same reason a fully
//! drained engine promotes into a whole-program [`Analysis`] via
//! [`QueryEngine::into_analysis`], which is how
//! [`AnalysisCache::reanalyze`](crate::AnalysisCache::reanalyze)
//! reuses memoized components instead of re-solving from scratch.

use std::fmt;
use std::time::{Duration, Instant};

use spike_callgraph::CallGraph;
use spike_cfg::{ProgramCfg, RoutineCfg};
use spike_isa::{CallingStandard, CloneExact, HeapSize, RegSet};
use spike_program::{Program, RoutineId};

use crate::analysis::{
    exported_exit_seeds, Analysis, AnalysisOptions, AnalysisStats, Representation,
};
use crate::build::build_psg;
use crate::parallel::{par_for_each_mut, par_map, resolve_threads};
use crate::psg::{NodeId, Psg};
use crate::schedule::{
    init_phase1_values, init_phase2_component, solve_phase1_components, solve_phase2_components,
    CompSolver, SccSchedule,
};
use crate::summary::ProgramSummary;

/// One demand-driven question about the analyzed program.
///
/// The uninitialized-read check is also answerable on demand, but it
/// lives in `spike-lint`; see
/// [`AnalysisCache::with_uninit_facts`](crate::AnalysisCache::with_uninit_facts)
/// for the entry point that hands the lint check exactly the cone of
/// facts it needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Query {
    /// The routine's phase-1 entry summary: `call-used`,
    /// `call-defined`, `call-killed` per entrance, and the §3.4
    /// saved/restored set. Needs phase 1 over the callee closure.
    Summary(RoutineId),
    /// The routine's liveness: `live-at-entry` per entrance and
    /// `live-at-exit` per exit. Needs phase 2 over the caller closure
    /// (and phase 1 over that closure's callee closure).
    LiveAtEntry(RoutineId),
    /// Whether `caller` transitively calls `callee` (a call path of at
    /// least one edge). Pure condensation reachability; solves nothing.
    Reaches {
        /// The routine the path starts from.
        caller: RoutineId,
        /// The routine the path must reach.
        callee: RoutineId,
    },
}

/// The answer to a [`Query`], sliced bit-identically from the
/// whole-program fixpoint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryAnswer {
    /// Answer to [`Query::Summary`], one entry per entrance.
    Summary {
        /// `MAY-USE` at each entrance, saved/restored filtered.
        call_used: Vec<RegSet>,
        /// `MUST-DEF` at each entrance, saved/restored filtered.
        call_defined: Vec<RegSet>,
        /// `MAY-DEF` at each entrance, saved/restored filtered.
        call_killed: Vec<RegSet>,
        /// The §3.4 saved-and-restored set.
        saved_restored: RegSet,
    },
    /// Answer to [`Query::LiveAtEntry`].
    LiveAtEntry {
        /// Liveness at each entrance.
        live_at_entry: Vec<RegSet>,
        /// Liveness at each exit.
        live_at_exit: Vec<RegSet>,
    },
    /// Answer to [`Query::Reaches`].
    Reaches(bool),
}

/// Effort accounting for one query: how big its cone was and how much
/// of it actually had to be solved (the rest was memoized). A repeated
/// query reports zero components solved and zero visits.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct QueryStats {
    /// Components in the query's phase-1 dependency cone (solved by
    /// this query or memoized by an earlier one).
    pub phase1_cone_components: usize,
    /// Components in the query's phase-2 dependency cone.
    pub phase2_cone_components: usize,
    /// Routines in the phase-1 cone.
    pub cone_routines: usize,
    /// Components whose phase-1 fixpoint this query solved.
    pub phase1_components_solved: usize,
    /// Components whose phase-2 fixpoint this query solved.
    pub phase2_components_solved: usize,
    /// PSG node evaluations this query performed.
    pub visits: usize,
    /// The answer was sliced from an already converged whole-program
    /// analysis; no demand machinery ran.
    pub answered_from_full: bool,
}

/// The demand-driven engine: the analysis front end plus per-component
/// memoized fixpoints.
///
/// Construction pays the front end (CFG build, `DEF`/`UBD`
/// initialization, PSG build, schedule) and the intra-routine phase-1
/// prologue; each [`query`](Self::query) then solves only the unsolved
/// part of its cone. All values live in the one shared [`Psg`], so
/// memoization is free: a solved component's values simply stay put.
pub struct QueryEngine {
    cfg: ProgramCfg,
    psg: Psg,
    schedule: SccSchedule,
    /// Precomputed at construction (needs only PSG structure), so
    /// phase-2 component initialization and promotion are
    /// program-free.
    exit_seeds: Vec<(NodeId, RegSet)>,
    /// Per routine: whether it directly calls itself. The condensation
    /// drops self-loops, so singleton-component reachability needs it.
    self_call: Vec<bool>,
    /// Per component: phase-1 fixpoint converged. Invariant: solved
    /// implies every callee component solved.
    p1_solved: Vec<bool>,
    /// Per component: phase-2 fixpoint converged (and its liveness
    /// initialized). Invariant: solved implies every caller component
    /// solved.
    p2_solved: Vec<bool>,
    solver: CompSolver,
    calling_standard: CallingStandard,
    /// The stack-slot layer, computed eagerly at construction (the
    /// engine keeps no program reference, and the layer is front-end
    /// cheap next to the register phases); promotion moves it out.
    stack: crate::stack::StackAnalysis,
    stack_stats: crate::stack::StackStats,
    stack_build: Duration,
    // Accumulated effort, reported by `into_analysis` as the promoted
    // run's stats.
    front_end_workers: usize,
    cfg_build: Duration,
    init: Duration,
    psg_build: Duration,
    phase1_time: Duration,
    phase2_time: Duration,
    phase1_visits: usize,
    phase2_visits: usize,
}

impl QueryEngine {
    /// Builds the engine: the same front end as
    /// [`crate::analyze_with`] (bit-identical CFGs and PSG), the SCC
    /// schedule, and the phase-1 init/warm-seed prologue — but no
    /// fixpoint solving at all.
    pub fn new(program: &Program, options: &AnalysisOptions) -> QueryEngine {
        let n_routines = program.routines().len();
        let workers = resolve_threads(options.threads).clamp(1, n_routines.max(1));

        let t = Instant::now();
        let mut cfgs: Vec<RoutineCfg> = par_map(n_routines, workers, |i| {
            RoutineCfg::build_structure(program, RoutineId::from_index(i))
        });
        let cfg_build = t.elapsed();

        let t = Instant::now();
        par_for_each_mut(&mut cfgs, workers, |c| c.init_def_ubd(program));
        let init = t.elapsed();
        let cfg = ProgramCfg::from_cfgs(cfgs);

        let t = Instant::now();
        let mut psg = build_psg(program, &cfg, options, workers);
        let psg_build = t.elapsed();

        let t = Instant::now();
        let schedule = SccSchedule::build(program, &cfg, &psg);
        init_phase1_values(&mut psg, &schedule, None);
        let exit_seeds = exported_exit_seeds(program, &psg, options);
        let graph = CallGraph::build(program, &cfg);
        let self_call: Vec<bool> = (0..n_routines)
            .map(|i| {
                let r = RoutineId::from_index(i);
                graph.callees(r).contains(&r)
            })
            .collect();
        let phase1_time = t.elapsed();

        let t = Instant::now();
        let (stack, stack_stats) = crate::stack::analyze_stack(program, &cfg);
        let stack_build = t.elapsed();

        let components = schedule.components();
        let solver = CompSolver::new(n_routines, psg.nodes().len());
        QueryEngine {
            cfg,
            psg,
            schedule,
            exit_seeds,
            self_call,
            p1_solved: vec![false; components],
            p2_solved: vec![false; components],
            solver,
            calling_standard: options.calling_standard,
            stack,
            stack_stats,
            stack_build,
            front_end_workers: workers,
            cfg_build,
            init,
            psg_build,
            phase1_time,
            phase2_time: Duration::ZERO,
            phase1_visits: 0,
            phase2_visits: 0,
        }
    }

    /// The number of routines the engine was built over.
    pub fn routines(&self) -> usize {
        self.psg.all_routine_nodes().len()
    }

    /// Deterministic heap estimate (CFGs + PSG), for byte-budgeted
    /// caches. Solving mutates values in place, so this is constant
    /// over the engine's lifetime.
    pub fn heap_bytes(&self) -> usize {
        self.cfg.heap_bytes() + self.psg.heap_bytes() + self.stack.heap_bytes()
    }

    /// The control-flow graphs the engine analyzes over.
    pub fn cfg(&self) -> &ProgramCfg {
        &self.cfg
    }

    /// Answers one query, solving the unsolved part of its cone.
    pub fn query(&mut self, query: &Query) -> (QueryAnswer, QueryStats) {
        let mut stats = QueryStats::default();
        let answer = match *query {
            Query::Summary(r) => {
                let c = self.schedule.component_of_routine(r);
                self.ensure_phase1(&[c], &mut stats);
                let rn = self.psg.routine_nodes(r);
                let csr = rn.saved_restored();
                let entries = rn.entries().to_vec();
                QueryAnswer::Summary {
                    call_used: entries.iter().map(|&n| self.psg.may_use(n) - csr).collect(),
                    call_defined: entries.iter().map(|&n| self.psg.must_def(n) - csr).collect(),
                    call_killed: entries.iter().map(|&n| self.psg.may_def(n) - csr).collect(),
                    saved_restored: csr,
                }
            }
            Query::LiveAtEntry(r) => {
                let c = self.schedule.component_of_routine(r);
                self.ensure_phase2(c, &mut stats);
                let rn = self.psg.routine_nodes(r);
                QueryAnswer::LiveAtEntry {
                    live_at_entry: rn.entries().iter().map(|&n| self.psg.live(n)).collect(),
                    live_at_exit: rn.exits().iter().map(|&n| self.psg.live(n)).collect(),
                }
            }
            Query::Reaches { caller, callee } => QueryAnswer::Reaches(self.reaches(caller, callee)),
        };
        (answer, stats)
    }

    /// Ensures phase-1 facts for every routine whose `call-defined`
    /// summary the single-routine uninitialized-read check of `routine`
    /// reads: phase 1 over the callee closure of `routine`'s caller
    /// closure. The check itself runs in `spike-lint`; this makes the
    /// facts it pulls exact.
    pub fn ensure_uninit(&mut self, routine: RoutineId) -> QueryStats {
        let mut stats = QueryStats::default();
        let callers = self.caller_closure(self.schedule.component_of_routine(routine));
        stats.phase2_cone_components = callers.len();
        self.ensure_phase1(&callers, &mut stats);
        stats
    }

    /// A summary snapshot extracted from the current PSG values. Only
    /// the slice covered by previously ensured cones is meaningful;
    /// everything else holds unconverged intermediate values.
    pub fn summary_snapshot(&self) -> ProgramSummary {
        ProgramSummary::from_psg(&self.psg, self.calling_standard)
    }

    /// Solves both phases over everything not yet solved and promotes
    /// the engine into a whole-program [`Analysis`] — bit-identical
    /// (summaries, PSG, `memory_bytes`) to a from-scratch
    /// [`crate::analyze_with`] run, with the accumulated demand effort
    /// as its stats.
    pub fn into_analysis(mut self) -> Analysis {
        let n_routines = self.routines();
        let components = self.schedule.components();
        let rest1: Vec<usize> = (0..components).filter(|&c| !self.p1_solved[c]).collect();
        let t = Instant::now();
        self.phase1_visits +=
            solve_phase1_components(&mut self.psg, &self.schedule, &rest1, &mut self.solver);
        self.phase1_time += t.elapsed();

        let rest2: Vec<usize> = (0..components).rev().filter(|&c| !self.p2_solved[c]).collect();
        let t = Instant::now();
        for &c in &rest2 {
            init_phase2_component(&mut self.psg, &self.schedule, c, &self.exit_seeds);
        }
        self.phase2_visits +=
            solve_phase2_components(&mut self.psg, &self.schedule, &rest2, &mut self.solver);
        self.phase2_time += t.elapsed();

        let summary = ProgramSummary::from_psg(&self.psg, self.calling_standard);
        let memory_bytes = self.cfg.heap_bytes()
            + self.psg.heap_bytes()
            + summary.heap_bytes()
            + self.stack.heap_bytes();
        let loops = (0..n_routines)
            .map(|i| {
                crate::analysis::routine_loop_stats(
                    self.cfg.routine_cfg(spike_program::RoutineId::from_index(i)),
                )
            })
            .collect();
        Analysis {
            psg: self.psg,
            summary,
            stack: self.stack,
            cfg: self.cfg,
            loops,
            stats: AnalysisStats {
                cfg_build: self.cfg_build,
                init: self.init,
                psg_build: self.psg_build,
                phase1: self.phase1_time,
                phase2: self.phase2_time,
                stack_build: self.stack_build,
                phase1_visits: self.phase1_visits,
                phase2_visits: self.phase2_visits,
                stack_forward_visits: self.stack_stats.forward_visits,
                stack_backward_visits: self.stack_stats.backward_visits,
                // The demand engine iterates the dense per-node sets,
                // whatever the options say (see DESIGN.md: demand cones
                // re-solve components piecemeal, which the warm-start
                // contract of the chain solvers does not cover).
                representation: Representation::Dense,
                front_end_workers: self.front_end_workers,
                phase_workers: 1,
                waves: self.schedule.waves(),
                routines_reanalyzed: n_routines,
                routines_reused: 0,
                memory_bytes,
            },
        }
    }

    /// Walks the full phase-1 cone (callee closure) of `targets`,
    /// counts it into `stats`, and solves its unsolved components
    /// bottom-up. The condensation numbers callees before callers, so
    /// ascending component index is bottom-up order; the solved-implies-
    /// callees-solved invariant holds because every callee of a newly
    /// solved component is either freshly solved (it sorts earlier) or
    /// was already solved.
    fn ensure_phase1(&mut self, targets: &[usize], stats: &mut QueryStats) {
        let mut seen = vec![false; self.schedule.components()];
        let mut stack: Vec<usize> = targets.to_vec();
        let mut need: Vec<usize> = Vec::new();
        while let Some(c) = stack.pop() {
            if seen[c] {
                continue;
            }
            seen[c] = true;
            stats.phase1_cone_components += 1;
            stats.cone_routines += self.schedule.condensation().sccs().components()[c].len();
            if !self.p1_solved[c] {
                need.push(c);
            }
            stack.extend_from_slice(self.schedule.condensation().callee_components(c));
        }
        need.sort_unstable();
        let t = Instant::now();
        let visits =
            solve_phase1_components(&mut self.psg, &self.schedule, &need, &mut self.solver);
        self.phase1_time += t.elapsed();
        self.phase1_visits += visits;
        stats.visits += visits;
        stats.phase1_components_solved += need.len();
        for &c in &need {
            self.p1_solved[c] = true;
        }
    }

    /// Solves phase 2 over the caller closure of `target` (top-down,
    /// after ensuring the phase-1 prerequisite over the closure's
    /// callee closure), initializing each component's liveness lazily
    /// at its first solve — valid because `MAY-USE` is final by then
    /// and nothing outside the closure ever reads the component.
    fn ensure_phase2(&mut self, target: usize, stats: &mut QueryStats) {
        let callers = self.caller_closure(target);
        stats.phase2_cone_components = callers.len();
        self.ensure_phase1(&callers, stats);

        let mut need: Vec<usize> =
            callers.iter().copied().filter(|&c| !self.p2_solved[c]).collect();
        need.sort_unstable_by(|a, b| b.cmp(a));
        let t = Instant::now();
        for &c in &need {
            init_phase2_component(&mut self.psg, &self.schedule, c, &self.exit_seeds);
        }
        let visits =
            solve_phase2_components(&mut self.psg, &self.schedule, &need, &mut self.solver);
        self.phase2_time += t.elapsed();
        self.phase2_visits += visits;
        stats.visits += visits;
        stats.phase2_components_solved += need.len();
        for &c in &need {
            self.p2_solved[c] = true;
        }
    }

    /// The caller closure of component `target`, including itself.
    fn caller_closure(&self, target: usize) -> Vec<usize> {
        let mut seen = vec![false; self.schedule.components()];
        let mut stack = vec![target];
        let mut closure = Vec::new();
        while let Some(c) = stack.pop() {
            if seen[c] {
                continue;
            }
            seen[c] = true;
            closure.push(c);
            stack.extend_from_slice(self.schedule.condensation().caller_components(c));
        }
        closure
    }

    /// Whether a call path of at least one edge leads from `caller` to
    /// `callee`.
    fn reaches(&self, caller: RoutineId, callee: RoutineId) -> bool {
        let cond = self.schedule.condensation();
        let from = self.schedule.component_of_routine(caller);
        let to = self.schedule.component_of_routine(callee);
        if from == to {
            // Inside one SCC every member calls (transitively) every
            // other; only a singleton needs the dropped self-loop.
            return cond.sccs().components()[from].len() > 1 || self.self_call[caller.index()];
        }
        let mut seen = vec![false; self.schedule.components()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(c) = stack.pop() {
            for &d in cond.callee_components(c) {
                if d == to {
                    return true;
                }
                if !seen[d] {
                    seen[d] = true;
                    stack.push(d);
                }
            }
        }
        false
    }
}

impl Clone for QueryEngine {
    /// Clones the engine's values exactly ([`CloneExact`] on the PSG
    /// and CFGs, so a later [`Self::into_analysis`] still reports
    /// scratch-identical `memory_bytes`); the solver scratch is
    /// rebuilt fresh.
    fn clone(&self) -> QueryEngine {
        QueryEngine {
            cfg: self.cfg.clone_exact(),
            psg: self.psg.clone_exact(),
            schedule: self.schedule.clone(),
            exit_seeds: self.exit_seeds.clone(),
            self_call: self.self_call.clone(),
            p1_solved: self.p1_solved.clone(),
            p2_solved: self.p2_solved.clone(),
            solver: CompSolver::new(self.routines(), self.psg.nodes().len()),
            calling_standard: self.calling_standard,
            stack: self.stack.clone_exact(),
            stack_stats: self.stack_stats,
            stack_build: self.stack_build,
            front_end_workers: self.front_end_workers,
            cfg_build: self.cfg_build,
            init: self.init,
            psg_build: self.psg_build,
            phase1_time: self.phase1_time,
            phase2_time: self.phase2_time,
            phase1_visits: self.phase1_visits,
            phase2_visits: self.phase2_visits,
        }
    }
}

impl fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryEngine")
            .field("routines", &self.routines())
            .field("components", &self.schedule.components())
            .field("phase1_solved", &self.p1_solved.iter().filter(|&&s| s).count())
            .field("phase2_solved", &self.p2_solved.iter().filter(|&&s| s).count())
            .field("phase1_visits", &self.phase1_visits)
            .field("phase2_visits", &self.phase2_visits)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_with;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).def(Reg::A0).call("leaf").call("mid").put_int().halt();
        b.routine("mid").def(Reg::T1).def(Reg::A0).call("leaf").ret();
        b.routine("leaf").copy(Reg::A0, Reg::V0).ret();
        b.routine("orphan").def(Reg::A0).call("leaf").ret();
        b.build().unwrap()
    }

    fn assert_summary_matches(program: &Program, engine: &mut QueryEngine, dense: &Analysis) {
        for (rid, r) in program.iter() {
            let (answer, _) = engine.query(&Query::Summary(rid));
            let s = dense.summary.routine(rid);
            let QueryAnswer::Summary { call_used, call_defined, call_killed, saved_restored } =
                answer
            else {
                panic!("summary query returns a summary answer");
            };
            assert_eq!(call_used, s.call_used, "call-used of {}", r.name());
            assert_eq!(call_defined, s.call_defined, "call-defined of {}", r.name());
            assert_eq!(call_killed, s.call_killed, "call-killed of {}", r.name());
            assert_eq!(saved_restored, s.saved_restored, "saved/restored of {}", r.name());
        }
    }

    #[test]
    fn queries_match_the_dense_slice() {
        let p = sample();
        let options = AnalysisOptions::default();
        let dense = analyze_with(&p, &options);
        let mut engine = QueryEngine::new(&p, &options);
        assert_summary_matches(&p, &mut engine, &dense);
        for (rid, r) in p.iter() {
            let (answer, _) = engine.query(&Query::LiveAtEntry(rid));
            let s = dense.summary.routine(rid);
            assert_eq!(
                answer,
                QueryAnswer::LiveAtEntry {
                    live_at_entry: s.live_at_entry.clone(),
                    live_at_exit: s.live_at_exit.clone(),
                },
                "liveness of {}",
                r.name()
            );
        }
    }

    #[test]
    fn query_order_does_not_change_answers() {
        // Liveness first (forcing the phase-1 prerequisite through the
        // phase-2 path), then summaries on the memoized engine.
        let p = sample();
        let options = AnalysisOptions::default();
        let dense = analyze_with(&p, &options);
        let mut engine = QueryEngine::new(&p, &options);
        let main = p.routine_by_name("main").unwrap();
        engine.query(&Query::LiveAtEntry(main));
        assert_summary_matches(&p, &mut engine, &dense);
    }

    #[test]
    fn repeated_queries_are_memoized() {
        let p = sample();
        let mut engine = QueryEngine::new(&p, &AnalysisOptions::default());
        let leaf = p.routine_by_name("leaf").unwrap();
        let (first_answer, first) = engine.query(&Query::LiveAtEntry(leaf));
        assert!(first.phase1_components_solved > 0);
        let (again_answer, again) = engine.query(&Query::LiveAtEntry(leaf));
        assert_eq!(first_answer, again_answer);
        assert_eq!(again.phase1_components_solved, 0);
        assert_eq!(again.phase2_components_solved, 0);
        assert_eq!(again.visits, 0);
        assert_eq!(again.phase1_cone_components, first.phase1_cone_components);
    }

    #[test]
    fn summary_query_solves_only_the_callee_cone() {
        let p = sample();
        let mut engine = QueryEngine::new(&p, &AnalysisOptions::default());
        let leaf = p.routine_by_name("leaf").unwrap();
        let (_, stats) = engine.query(&Query::Summary(leaf));
        // `leaf` calls nothing: its phase-1 cone is its own component.
        assert_eq!(stats.phase1_cone_components, 1);
        assert_eq!(stats.cone_routines, 1);
        assert_eq!(stats.phase1_components_solved, 1);
        assert_eq!(stats.phase2_components_solved, 0);
    }

    #[test]
    fn reaches_follows_call_paths() {
        let p = sample();
        let mut engine = QueryEngine::new(&p, &AnalysisOptions::default());
        let id = |name: &str| p.routine_by_name(name).unwrap();
        let reaches =
            |e: &mut QueryEngine, a, b| match e.query(&Query::Reaches { caller: a, callee: b }) {
                (QueryAnswer::Reaches(r), _) => r,
                _ => unreachable!(),
            };
        assert!(reaches(&mut engine, id("main"), id("leaf")));
        assert!(reaches(&mut engine, id("main"), id("mid")));
        assert!(reaches(&mut engine, id("mid"), id("leaf")));
        assert!(!reaches(&mut engine, id("leaf"), id("main")));
        assert!(!reaches(&mut engine, id("mid"), id("main")));
        assert!(!reaches(&mut engine, id("main"), id("orphan")));
        // No self loop: a routine does not reach itself without a call.
        assert!(!reaches(&mut engine, id("main"), id("main")));
    }

    #[test]
    fn recursive_routines_reach_themselves() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("loop").halt();
        b.routine("loop").def(Reg::A0).call("loop").ret();
        let p = b.build().unwrap();
        let mut engine = QueryEngine::new(&p, &AnalysisOptions::default());
        let lp = p.routine_by_name("loop").unwrap();
        let main = p.routine_by_name("main").unwrap();
        let ask =
            |e: &mut QueryEngine, a, b| match e.query(&Query::Reaches { caller: a, callee: b }) {
                (QueryAnswer::Reaches(r), _) => r,
                _ => unreachable!(),
            };
        assert!(ask(&mut engine, lp, lp));
        assert!(ask(&mut engine, main, lp));
        assert!(!ask(&mut engine, main, main));
    }

    #[test]
    fn a_drained_engine_promotes_to_the_scratch_analysis() {
        let p = sample();
        let options = AnalysisOptions::default();
        let scratch = analyze_with(&p, &options);

        // Promote after partial demand solving.
        let mut engine = QueryEngine::new(&p, &options);
        engine.query(&Query::LiveAtEntry(p.routine_by_name("mid").unwrap()));
        let promoted = engine.into_analysis();
        assert_eq!(promoted.summary, scratch.summary);
        assert_eq!(promoted.psg, scratch.psg);
        assert_eq!(promoted.stats.memory_bytes, scratch.stats.memory_bytes);

        // And after no demand solving at all.
        let cold = QueryEngine::new(&p, &options).into_analysis();
        assert_eq!(cold.summary, scratch.summary);
        assert_eq!(cold.psg, scratch.psg);
        assert_eq!(cold.stats.memory_bytes, scratch.stats.memory_bytes);
    }

    #[test]
    fn clones_answer_and_promote_identically() {
        let p = sample();
        let options = AnalysisOptions::default();
        let scratch = analyze_with(&p, &options);
        let mut engine = QueryEngine::new(&p, &options);
        let main = p.routine_by_name("main").unwrap();
        engine.query(&Query::Summary(main));
        let mut fork = engine.clone();
        let (a, _) = engine.query(&Query::LiveAtEntry(main));
        let (b, _) = fork.query(&Query::LiveAtEntry(main));
        assert_eq!(a, b);
        let promoted = fork.into_analysis();
        assert_eq!(promoted.summary, scratch.summary);
        assert_eq!(promoted.stats.memory_bytes, scratch.stats.memory_bytes);
    }
}
