//! Incremental re-analysis: reuse the converged analysis of a program
//! across small edits.
//!
//! The optimizer edits a handful of routines per pass; rebuilding every
//! routine's CFG and the entire PSG to re-converge the two dataflow
//! phases wastes almost all of that work. [`AnalysisCache`] keeps the
//! previous [`Analysis`] and [`AnalysisCache::reanalyze`] patches it in
//! place:
//!
//! 1. **Front end** — only *dirty* routines (those whose instruction
//!    words changed, as reported by `Rewriter::finish`) get their CFG,
//!    `DEF`/`UBD` sets, §3.4 saved/restored scan, and PSG node/edge plans
//!    rebuilt. Clean routines are shifted to their new base address with
//!    [`RoutineCfg::rebase`]; their PSG structures are reused verbatim.
//! 2. **Structural validation** — the optimizer's edits preserve each
//!    routine's control-flow shape (terminators are never deleted,
//!    replacements keep targets, call identities survive relinking), so a
//!    dirty routine's fresh node/edge plan must match the cached PSG
//!    node-for-node and edge-for-edge. Labels are overwritten from the
//!    fresh plan; any structural mismatch falls back to a from-scratch
//!    analysis, so incremental reuse is an optimization, never a gamble.
//! 3. **Seeded fixpoint** — phases 1–2 rerun over a *reset subspace*
//!    (dirty routines plus everything their changes can influence) while
//!    clean nodes keep their converged values. The reset closures and the
//!    argument that this reproduces the from-scratch solution exactly —
//!    bit-identical summaries, `memory_bytes`, and PSG — are documented
//!    in DESIGN.md ("Incremental re-analysis"); debug builds assert the
//!    equality against an actual from-scratch run.

use std::time::Instant;

use spike_cfg::{ProgramCfg, RoutineCfg};
use spike_isa::{HeapSize, RegSet};
use spike_program::{Program, RoutineId};

use crate::analysis::{
    analyze_with, exported_exit_seeds, phase1_seed_order, routine_loop_stats, Analysis,
    AnalysisOptions, AnalysisStats, Representation, Scheduler,
};
use crate::build::{plan_routine_edges, plan_routine_nodes, RoutineEdgePlan};
use crate::callee_saved::saved_restored_registers;
use crate::dataflow::{run_phase1_seeded, run_phase2_seeded};
use crate::flow::FlowScratch;
use crate::parallel::{par_for_each_mut, par_map, par_map_with, resolve_threads};
use crate::psg::{EdgeKind, NodeId, Psg};
use crate::query::{Query, QueryAnswer, QueryEngine, QueryStats};
use crate::schedule::{run_phase1_scheduled, run_phase2_scheduled, SccSchedule};
use crate::sparse::{run_phase1_sparse, run_phase2_sparse, SparseProgram};
use crate::stack::reanalyze_stack;
use crate::summary::ProgramSummary;

/// A reusable analysis: the converged [`Analysis`] of the last program
/// seen, plus the options every (re)run uses.
///
/// ```
/// use spike_isa::Reg;
/// use spike_program::{ProgramBuilder, Rewriter};
///
/// let mut b = ProgramBuilder::new();
/// b.routine("main").def(Reg::T0).def(Reg::A0).call("id").put_int().halt();
/// b.routine("id").copy(Reg::A0, Reg::V0).ret();
/// let program = b.build()?;
///
/// let mut cache = spike_core::AnalysisCache::new(spike_core::AnalysisOptions::default());
/// cache.analyze(&program);
///
/// // Delete the dead `def t0`; only `main` changed, so only `main` is
/// // re-analyzed — `id`'s front-end structures are reused.
/// let addr = program.routines()[0].addr();
/// let (edited, dirty) = Rewriter::new(&program).delete(addr).finish()?;
/// let analysis = cache.reanalyze(&edited, &dirty);
/// assert_eq!(analysis.stats.routines_reanalyzed, 1);
/// assert_eq!(analysis.stats.routines_reused, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct AnalysisCache {
    options: AnalysisOptions,
    state: Option<Analysis>,
    /// Demand-driven engine serving [`Self::query`] while no converged
    /// whole-program analysis exists. Invariant: at most one of `state`
    /// and `query` is `Some` — a full analysis answers queries directly,
    /// and [`Self::reanalyze`] promotes a live engine into `state`.
    query: Option<QueryEngine>,
    /// Warm sparse def-use chains from the last
    /// [`Representation::Sparse`] run over `state`'s PSG. Chains are
    /// strictly intra-routine, so [`Self::reanalyze`] rebuilds only the
    /// dirty routines' chains and reuses the rest — the chain-level twin
    /// of the CFG/PSG plan reuse. Never part of `state` itself: the
    /// analysis result (and its `memory_bytes`) stays bit-identical
    /// whether or not warm chains exist; they are charged separately via
    /// [`Self::heap_bytes`].
    sparse: Option<SparseProgram>,
}

impl AnalysisCache {
    /// Creates an empty cache; the first [`analyze`](Self::analyze) or
    /// [`reanalyze`](Self::reanalyze) fills it with a from-scratch run.
    pub fn new(options: AnalysisOptions) -> AnalysisCache {
        AnalysisCache { options, state: None, query: None, sparse: None }
    }

    /// Creates a cache already warmed with a converged `analysis` of some
    /// program. The next [`reanalyze`](Self::reanalyze) over an edited
    /// copy of that program re-solves only the dirty routines, exactly as
    /// if this cache had computed `analysis` itself — the entry point a
    /// long-running service uses to fork a cached analysis into the warm
    /// starting point for a diffed re-submission.
    ///
    /// When forking from a shared analysis, copy it with
    /// [`CloneExact`](spike_isa::CloneExact): `reanalyze`'s bit-identical
    /// `memory_bytes` guarantee counts Vec *capacities*, which a plain
    /// `Clone` compacts.
    pub fn from_analysis(options: AnalysisOptions, analysis: Analysis) -> AnalysisCache {
        AnalysisCache { options, state: Some(analysis), query: None, sparse: None }
    }

    /// Consumes the cache, returning the converged analysis if any run
    /// has completed. A cache holding only a demand-driven query engine
    /// drains the engine (solving whatever its queries left unsolved)
    /// into the equivalent whole-program analysis.
    pub fn into_analysis(self) -> Option<Analysis> {
        self.state.or_else(|| self.query.map(QueryEngine::into_analysis))
    }

    /// A deterministic estimate of the heap the cached analysis retains
    /// (its CFGs, PSG and summaries, via [`HeapSize`] accounting), for
    /// byte-budgeted eviction decisions in caches of caches. An empty
    /// cache is free.
    /// Warm sparse chains, when present, are charged on top of the
    /// analysis bytes (they are cache acceleration state, not part of
    /// the bit-identical analysis result).
    pub fn heap_bytes(&self) -> usize {
        let chains = self.sparse.heap_bytes();
        match (&self.state, &self.query) {
            (Some(a), _) => a.stats.memory_bytes + chains,
            (None, Some(engine)) => engine.heap_bytes() + chains,
            (None, None) => chains,
        }
    }

    /// The options every analysis run through this cache uses.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// The cached analysis, if any run has completed.
    pub fn analysis(&self) -> Option<&Analysis> {
        self.state.as_ref()
    }

    /// Drops the cached analysis (and any demand-driven query engine);
    /// the next call re-analyzes from scratch.
    pub fn invalidate(&mut self) {
        self.state = None;
        self.query = None;
        self.sparse = None;
    }

    /// Analyzes `program` from scratch and caches the result.
    pub fn analyze(&mut self, program: &Program) -> &Analysis {
        self.state = Some(analyze_with(program, &self.options));
        self.query = None;
        self.sparse = None;
        self.state.as_ref().expect("state was just filled")
    }

    /// Answers one demand-driven [`Query`] about `program`.
    ///
    /// With a converged whole-program analysis cached, the answer is
    /// sliced from it directly. Otherwise the cache builds (or reuses) a
    /// [`QueryEngine`] and solves only the query's cone; the engine's
    /// per-component memoization persists across calls, and a later
    /// [`reanalyze`](Self::reanalyze) promotes it instead of starting
    /// from scratch. Either way the answer is bit-identical to the same
    /// slice of [`analyze`](Self::analyze)'s result.
    ///
    /// As with `reanalyze`, `program` must be the program the cache last
    /// saw (or the first program, on a cold cache); a routine-count
    /// change drops the stale state.
    ///
    /// # Panics
    ///
    /// Panics if the query names a routine outside `program`.
    pub fn query(&mut self, program: &Program, query: &Query) -> (QueryAnswer, QueryStats) {
        let n_routines = program.routines().len();
        if self.state.as_ref().is_some_and(|a| a.psg.all_routine_nodes().len() != n_routines) {
            self.state = None;
        }
        if let Some(a) = &self.state {
            let answer = match *query {
                Query::Summary(r) => {
                    let s = a.summary.routine(r);
                    QueryAnswer::Summary {
                        call_used: s.call_used.clone(),
                        call_defined: s.call_defined.clone(),
                        call_killed: s.call_killed.clone(),
                        saved_restored: s.saved_restored,
                    }
                }
                Query::LiveAtEntry(r) => {
                    let s = a.summary.routine(r);
                    QueryAnswer::LiveAtEntry {
                        live_at_entry: s.live_at_entry.clone(),
                        live_at_exit: s.live_at_exit.clone(),
                    }
                }
                Query::Reaches { caller, callee } => {
                    QueryAnswer::Reaches(reaches_in_callgraph(program, &a.cfg, caller, callee))
                }
            };
            return (answer, QueryStats { answered_from_full: true, ..QueryStats::default() });
        }
        self.demand_engine(program).query(query)
    }

    /// Runs `f` on the control-flow graphs and summary slice the
    /// single-routine uninitialized-read check of `routine` needs
    /// (`spike-lint`'s `uninit_routine`), ensuring exactly that cone is
    /// converged first.
    ///
    /// The check's restricted fixpoint reads the `call-defined` summary
    /// of every call site in `routine`'s caller closure, so the demand
    /// path ensures phase 1 over the callee closure of that caller
    /// closure; within it, the summary snapshot passed to `f` equals the
    /// whole-program analysis bit-for-bit. Summaries outside the cone
    /// hold unconverged values the restricted check provably never
    /// reads.
    pub fn with_uninit_facts<R>(
        &mut self,
        program: &Program,
        routine: RoutineId,
        f: impl FnOnce(&ProgramCfg, &ProgramSummary) -> R,
    ) -> (R, QueryStats) {
        let n_routines = program.routines().len();
        if self.state.as_ref().is_some_and(|a| a.psg.all_routine_nodes().len() != n_routines) {
            self.state = None;
        }
        if let Some(a) = &self.state {
            let stats = QueryStats { answered_from_full: true, ..QueryStats::default() };
            return (f(&a.cfg, &a.summary), stats);
        }
        let engine = self.demand_engine(program);
        let stats = engine.ensure_uninit(routine);
        let summary = engine.summary_snapshot();
        (f(engine.cfg(), &summary), stats)
    }

    /// The live demand engine for `program`, building one if the cache
    /// holds none (or holds one for a different routine count).
    fn demand_engine(&mut self, program: &Program) -> &mut QueryEngine {
        let n_routines = program.routines().len();
        if self.query.as_ref().is_some_and(|e| e.routines() != n_routines) {
            self.query = None;
        }
        let options = &self.options;
        self.query.get_or_insert_with(|| QueryEngine::new(program, options))
    }

    /// Re-analyzes `program` after an edit that changed (at most) the
    /// routines in `dirty`, reusing the cached front-end structures and
    /// converged dataflow values of every clean routine.
    ///
    /// `dirty` must contain every routine whose instruction words differ
    /// from the program the cache last saw — exactly the set
    /// `Rewriter::finish` returns. Routines that merely moved to a new
    /// base address (because an earlier routine shrank) need not be
    /// listed. If the cache is empty, or `dirty` names a routine whose
    /// control-flow shape changed (which the optimizer's edits never do),
    /// this transparently falls back to a from-scratch analysis.
    ///
    /// The result is bit-identical to [`analyze`](Self::analyze) on
    /// `program`: same summaries, same `memory_bytes`, same PSG. Only the
    /// timing/effort counters and the `routines_reanalyzed` /
    /// `routines_reused` pair differ. Debug builds assert the equality.
    pub fn reanalyze(&mut self, program: &Program, dirty: &[RoutineId]) -> &Analysis {
        let n_routines = program.routines().len();
        // A live demand engine stands in for the cached analysis it was
        // promoted from: draining it solves only the components its
        // queries left untouched and yields exactly the analysis of the
        // program the cache last saw, which the incremental patching
        // below then edits forward as usual.
        if self.state.is_none() {
            if let Some(engine) = self.query.take() {
                if engine.routines() == n_routines {
                    self.state = Some(engine.into_analysis());
                }
            }
        }
        let cached_routines =
            self.state.as_ref().map(|a| a.psg.all_routine_nodes().len()).unwrap_or(usize::MAX);
        if self.state.is_none() || cached_routines != n_routines {
            return self.analyze(program);
        }

        let mut dirty: Vec<RoutineId> = dirty.to_vec();
        dirty.sort_unstable();
        dirty.dedup();
        if dirty.iter().any(|r| r.index() >= n_routines) {
            return self.analyze(program);
        }
        if dirty.is_empty() {
            // Nothing changed: the cached solution is the solution. Reset
            // the effort counters so callers see this run did no work.
            let a = self.state.as_mut().expect("cache is non-empty");
            a.stats = AnalysisStats {
                front_end_workers: a.stats.front_end_workers,
                representation: a.stats.representation,
                routines_reused: n_routines,
                memory_bytes: a.stats.memory_bytes,
                ..AnalysisStats::default()
            };
            return self.state.as_ref().expect("cache is non-empty");
        }

        let cached = self.state.take().expect("cache is non-empty");
        match try_reanalyze(cached, program, &self.options, &dirty, &mut self.sparse) {
            Ok(analysis) => {
                #[cfg(debug_assertions)]
                assert_matches_scratch(&analysis, program, &self.options);
                self.state = Some(analysis);
            }
            Err(()) => {
                // The chains (if any) describe the cached PSG that just
                // failed structural validation; drop them with it.
                self.sparse = None;
                self.state = Some(analyze_with(program, &self.options));
            }
        }
        self.state.as_ref().expect("state was just filled")
    }
}

/// Whether a call path of at least one edge leads from `caller` to
/// `callee` — the [`Query::Reaches`] semantics, answered from a cached
/// whole-program analysis (which keeps no condensation around) by a
/// routine-level walk of the rebuilt call graph.
fn reaches_in_callgraph(
    program: &Program,
    cfg: &ProgramCfg,
    caller: RoutineId,
    callee: RoutineId,
) -> bool {
    let graph = spike_callgraph::CallGraph::build(program, cfg);
    let mut seen = vec![false; graph.len()];
    let mut stack: Vec<RoutineId> = graph.callees(caller).to_vec();
    while let Some(r) = stack.pop() {
        if r == callee {
            return true;
        }
        if !seen[r.index()] {
            seen[r.index()] = true;
            stack.extend_from_slice(graph.callees(r));
        }
    }
    false
}

/// Free-function form of [`AnalysisCache::reanalyze`].
pub fn reanalyze<'c>(
    cache: &'c mut AnalysisCache,
    program: &Program,
    dirty: &[RoutineId],
) -> &'c Analysis {
    cache.reanalyze(program, dirty)
}

#[cfg(debug_assertions)]
fn assert_matches_scratch(incremental: &Analysis, program: &Program, options: &AnalysisOptions) {
    let scratch = analyze_with(program, options);
    assert_eq!(
        scratch.summary, incremental.summary,
        "incremental summaries must equal a from-scratch run"
    );
    assert_eq!(
        scratch.stats.memory_bytes, incremental.stats.memory_bytes,
        "incremental memory accounting must equal a from-scratch run"
    );
    assert_eq!(scratch.psg, incremental.psg, "incremental PSG must equal a from-scratch run");
    assert_eq!(
        scratch.stack, incremental.stack,
        "incremental stack-slot analysis must equal a from-scratch run"
    );
}

/// The incremental pipeline. Consumes the cached analysis (its PSG is
/// patched in place); `Err(())` means a structural assumption did not
/// hold and the caller must re-analyze from scratch.
fn try_reanalyze(
    cached: Analysis,
    program: &Program,
    options: &AnalysisOptions,
    dirty: &[RoutineId],
    sparse_cache: &mut Option<SparseProgram>,
) -> Result<Analysis, ()> {
    let n_routines = program.routines().len();
    let Analysis { mut psg, summary: _, stack: prev_stack, cfg, loops: mut loop_stats, stats: _ } =
        cached;

    let mut dirty_mask = vec![false; n_routines];
    for &r in dirty {
        dirty_mask[r.index()] = true;
    }
    let workers = resolve_threads(options.threads).clamp(1, dirty.len().max(1));

    // --- Front end, dirty routines only. ---
    let t = Instant::now();
    let mut rebuilt: Vec<RoutineCfg> =
        par_map(dirty.len(), workers, |i| RoutineCfg::build_structure(program, dirty[i]));
    let cfg_build = t.elapsed();

    let t = Instant::now();
    par_for_each_mut(&mut rebuilt, workers, |c| c.init_def_ubd(program));
    let mut cfgs = cfg.into_cfgs();
    for c in rebuilt {
        let i = c.routine().index();
        cfgs[i] = c;
    }
    // Clean routines kept their instruction words but may have shifted
    // when an earlier routine shrank; follow the move.
    for (i, c) in cfgs.iter_mut().enumerate() {
        if !dirty_mask[i] {
            c.rebase(program.routines()[i].addr());
        }
    }
    let init = t.elapsed();
    let cfg = ProgramCfg::from_cfgs(cfgs);
    // Loop structure derives purely from block structure: clean routines
    // keep their counts (rebasing moves addresses, not shape), dirty
    // routines are redetected.
    for &r in dirty {
        loop_stats[r.index()] = routine_loop_stats(cfg.routine_cfg(r));
    }

    // --- Patch the PSG's dirty routines in place. ---
    let t = Instant::now();
    for &r in dirty {
        patch_routine_nodes(&mut psg, program, cfg.routine_cfg(r), options)?;
    }
    let edge_ranges = routine_edge_ranges(&psg, n_routines);
    let plans: Vec<RoutineEdgePlan> =
        par_map_with(dirty.len(), workers, FlowScratch::new, |scratch, i| {
            plan_routine_edges(&psg, cfg.routine_cfg(dirty[i]), options, scratch)
        });
    for (&r, plan) in dirty.iter().zip(&plans) {
        let (lo, hi) = edge_ranges[r.index()];
        patch_routine_edges(&mut psg, r, plan, lo, hi)?;
    }
    let psg_build = t.elapsed();

    // --- Seeded fixpoint over the reset subspace. ---
    // Under the SCC-wave scheduler a seeded run schedules exactly the
    // components containing reset nodes (the reset closures are
    // SCC-saturated); every clean component keeps its wave slot empty.
    let t = Instant::now();
    let (reset1, reset2) = reset_masks(&psg, &dirty_mask);
    let representation = match options.scheduler {
        Scheduler::SccWave => options.representation,
        Scheduler::Fifo => Representation::Dense,
    };
    let (phase1_visits, phase2_visits, waves, phase_workers, phase1, phase2) =
        match options.scheduler {
            Scheduler::SccWave => {
                let schedule = SccSchedule::build(program, &cfg, &psg);
                let phase_workers =
                    resolve_threads(options.threads).clamp(1, schedule.max_wave_width().max(1));
                match representation {
                    Representation::Sparse => {
                        // Reuse the cached chains, rebuilding only the
                        // dirty routines': clean routines keep their PSG
                        // structure, flow labels and feedback-arc node
                        // ranks, so their chains are unchanged. A cache
                        // that no longer covers the PSG (or none at all)
                        // is rebuilt from scratch; construction is
                        // charged to phase 1 either way.
                        let chains = match sparse_cache.take() {
                            Some(mut sp) if sp.covers(&psg) => {
                                sp.rebuild_routines(&psg, &schedule, dirty);
                                sp
                            }
                            _ => SparseProgram::build(&psg, &schedule, &cfg),
                        };
                        debug_assert!(
                            chains == SparseProgram::build(&psg, &schedule, &cfg),
                            "dirty-routine chain rebuild must equal a from-scratch build"
                        );
                        let phase1_visits = run_phase1_sparse(
                            &mut psg,
                            &schedule,
                            &chains,
                            Some(&reset1),
                            phase_workers,
                        );
                        let phase1 = t.elapsed();
                        let t = Instant::now();
                        let exit_seeds = exported_exit_seeds(program, &psg, options);
                        let phase2_visits = run_phase2_sparse(
                            &mut psg,
                            &schedule,
                            &chains,
                            &exit_seeds,
                            Some(&reset2),
                            phase_workers,
                        );
                        *sparse_cache = Some(chains);
                        (
                            phase1_visits,
                            phase2_visits,
                            schedule.waves(),
                            phase_workers,
                            phase1,
                            t.elapsed(),
                        )
                    }
                    Representation::Dense => {
                        *sparse_cache = None;
                        let phase1_visits =
                            run_phase1_scheduled(&mut psg, &schedule, Some(&reset1), phase_workers);
                        let phase1 = t.elapsed();
                        let t = Instant::now();
                        let exit_seeds = exported_exit_seeds(program, &psg, options);
                        let phase2_visits = run_phase2_scheduled(
                            &mut psg,
                            &schedule,
                            &exit_seeds,
                            Some(&reset2),
                            phase_workers,
                        );
                        (
                            phase1_visits,
                            phase2_visits,
                            schedule.waves(),
                            phase_workers,
                            phase1,
                            t.elapsed(),
                        )
                    }
                }
            }
            Scheduler::Fifo => {
                *sparse_cache = None;
                let seed: Vec<NodeId> = phase1_seed_order(program, &cfg, &psg)
                    .into_iter()
                    .filter(|n| reset1[n.index()])
                    .collect();
                let phase1_visits = run_phase1_seeded(&mut psg, &seed, Some(&reset1));
                let phase1 = t.elapsed();
                let t = Instant::now();
                let exit_seeds = exported_exit_seeds(program, &psg, options);
                let phase2_visits = run_phase2_seeded(&mut psg, &exit_seeds, Some(&reset2));
                (phase1_visits, phase2_visits, 0, 1, phase1, t.elapsed())
            }
        };

    let summary = ProgramSummary::from_psg(&psg, options.calling_standard);

    // The stack-slot layer has its own component-grained incremental
    // path: clean components with unchanged external callee summaries
    // move their facts over untouched.
    let t = Instant::now();
    let (stack, stack_stats) = reanalyze_stack(program, &cfg, prev_stack, &dirty_mask);
    let stack_build = t.elapsed();

    let memory_bytes =
        cfg.heap_bytes() + psg.heap_bytes() + summary.heap_bytes() + stack.heap_bytes();

    Ok(Analysis {
        psg,
        summary,
        stack,
        cfg,
        loops: loop_stats,
        stats: AnalysisStats {
            cfg_build,
            init,
            psg_build,
            phase1,
            phase2,
            stack_build,
            phase1_visits,
            phase2_visits,
            stack_forward_visits: stack_stats.forward_visits,
            stack_backward_visits: stack_stats.backward_visits,
            representation,
            front_end_workers: workers,
            phase_workers,
            waves,
            routines_reanalyzed: dirty.len(),
            routines_reused: n_routines - dirty.len(),
            memory_bytes,
        },
    })
}

/// Re-plans one dirty routine's pass-1 nodes against its rebuilt CFG and
/// patches the cached node state (pinned flags, unknown-jump hints, §3.4
/// saved/restored set). The fresh plan must match the cached directory
/// node-for-node — same count, same kinds, same blocks — or the routine's
/// shape changed and the caller must rebuild from scratch.
fn patch_routine_nodes(
    psg: &mut Psg,
    program: &Program,
    cfg: &RoutineCfg,
    options: &AnalysisOptions,
) -> Result<(), ()> {
    let rid = cfg.routine();
    let planned = plan_routine_nodes(program, cfg, options);

    let rn = &psg.routines[rid.index()];
    let cached_ids: Vec<NodeId> = rn
        .entries
        .iter()
        .chain(&rn.exits)
        .copied()
        .chain(rn.calls.iter().flat_map(|&(_, c, r)| [c, r]))
        .chain(rn.branches.iter().map(|&(_, n)| n))
        .chain(rn.halts.iter().copied())
        .chain(rn.unknown_jumps.iter().copied())
        .collect();
    if planned.len() != cached_ids.len() {
        return Err(());
    }
    for (p, &id) in planned.iter().zip(&cached_ids) {
        if p.kind != psg.nodes[id.index()] {
            return Err(());
        }
    }

    for (p, &id) in planned.iter().zip(&cached_ids) {
        psg.pinned[id.index()] = p.pinned;
        psg.uj_live[id.index()] = p.uj_live;
    }
    psg.routines[rid.index()].saved_restored = if options.callee_saved_filter {
        saved_restored_registers(program, cfg, &options.calling_standard)
    } else {
        RegSet::EMPTY
    };
    Ok(())
}

/// Validates one dirty routine's fresh edge plan against the cached edges
/// in `[lo, hi)` — same count, endpoints, kinds, and call-return wiring —
/// then overwrites the labels the plan owns: flow-summary labels and the
/// static labels of unknown/hinted call-return edges. Known-target
/// call-return labels are left alone: for clean callees the cached
/// (converged) label is already final, and for reset callees the seeded
/// phase 1 reinitializes and refills it.
fn patch_routine_edges(
    psg: &mut Psg,
    rid: RoutineId,
    plan: &RoutineEdgePlan,
    lo: usize,
    hi: usize,
) -> Result<(), ()> {
    let rn = &psg.routines[rid.index()];
    if plan.needs_diverge != rn.diverge.is_some() || plan.edges.len() != hi - lo {
        return Err(());
    }
    let diverge = rn.diverge;

    for (k, planned) in plan.edges.iter().enumerate() {
        let ei = lo + k;
        let cached = &psg.edges[ei];
        let to = if planned.to_diverge {
            diverge.expect("checked: needs_diverge implies a cached diverge node")
        } else {
            planned.edge.to
        };
        if cached.from != planned.edge.from || cached.to != to || cached.kind != planned.edge.kind {
            return Err(());
        }
        match &planned.cr {
            Some((entry_sources, exit_targets)) => {
                if &psg.cr_sources[ei] != entry_sources
                    || &psg.return_exit_targets[to.index()] != exit_targets
                {
                    return Err(());
                }
            }
            None => {
                if !psg.cr_sources[ei].is_empty() {
                    return Err(());
                }
            }
        }
    }

    for (k, planned) in plan.edges.iter().enumerate() {
        let ei = lo + k;
        let overwrite = match planned.edge.kind {
            EdgeKind::FlowSummary => true,
            EdgeKind::CallReturn => psg.cr_sources[ei].is_empty(),
        };
        if overwrite {
            let e = &mut psg.edges[ei];
            e.may_use = planned.edge.may_use;
            e.may_def = planned.edge.may_def;
            e.must_def = planned.edge.must_def;
        }
    }
    Ok(())
}

/// Per-routine `[lo, hi)` ranges into `psg.edges`. Plans are applied in
/// routine-id order, so each routine's edges are contiguous and the
/// groups appear in routine-id order.
fn routine_edge_ranges(psg: &Psg, n_routines: usize) -> Vec<(usize, usize)> {
    let mut ranges = vec![(0usize, 0usize); n_routines];
    let mut prev = 0usize;
    let mut open: Option<usize> = None;
    for (ei, e) in psg.edges.iter().enumerate() {
        let r = psg.nodes[e.from().index()].routine().index();
        debug_assert!(r >= prev, "edges are grouped by routine in routine-id order");
        if open != Some(r) {
            ranges[r].0 = ei;
            open = Some(r);
        }
        ranges[r].1 = ei + 1;
        prev = r;
    }
    ranges
}

/// Computes the node reset masks for the seeded phases.
///
/// Phase 1 flows callee→caller, so the reset set is the caller-closure of
/// the dirty routines, additionally *promoted* so that every multi-source
/// call-return edge has either all or none of its source routines reset
/// (a half-reset edge could not replay the from-scratch label exactly).
/// Phase 2 flows caller→callee via the return→exit broadcast, so its
/// reset set is the phase-1 set closed under callees.
fn reset_masks(psg: &Psg, dirty_mask: &[bool]) -> (Vec<bool>, Vec<bool>) {
    let n_routines = dirty_mask.len();
    let routine_of = |n: NodeId| psg.nodes[n.index()].routine().index();

    let mut reset1_r = dirty_mask.to_vec();
    loop {
        let mut changed = false;
        // Caller closure: a reset routine's summary feeds the call-return
        // edges at its call sites, which live in its callers.
        for ri in 0..n_routines {
            if !reset1_r[ri] {
                continue;
            }
            for &entry in &psg.routines[ri].entries {
                for &eid in &psg.entry_cr_edges[entry.index()] {
                    let caller = routine_of(psg.edges[eid.index()].from());
                    if !reset1_r[caller] {
                        reset1_r[caller] = true;
                        changed = true;
                    }
                }
            }
        }
        // Co-source promotion: an indirect call's edge label meets over
        // all its target routines; resetting some sources but not others
        // would mix freshly reinitialized values with converged ones.
        for sources in &psg.cr_sources {
            if sources.len() < 2 {
                continue;
            }
            let reset_count = sources.iter().filter(|&&s| reset1_r[routine_of(s)]).count();
            if reset_count > 0 && reset_count < sources.len() {
                for &s in sources {
                    let r = routine_of(s);
                    if !reset1_r[r] {
                        reset1_r[r] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Callee closure for phase 2: a reset routine's return-node liveness
    // broadcasts into the exits of every routine it may call.
    let mut reset2_r = reset1_r.clone();
    loop {
        let mut changed = false;
        for ri in 0..n_routines {
            if !reset2_r[ri] {
                continue;
            }
            for &(_, _, ret) in &psg.routines[ri].calls {
                for &t in &psg.return_exit_targets[ret.index()] {
                    let callee = routine_of(t);
                    if !reset2_r[callee] {
                        reset2_r[callee] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let n = psg.nodes.len();
    let mut reset1 = vec![false; n];
    let mut reset2 = vec![false; n];
    for i in 0..n {
        let r = psg.nodes[i].routine().index();
        reset1[i] = reset1_r[r];
        reset2[i] = reset2_r[r];
    }
    (reset1, reset2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::Reg;
    use spike_program::{ProgramBuilder, Rewriter};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).def(Reg::A0).call("leaf").call("mid").put_int().halt();
        b.routine("mid").def(Reg::T1).def(Reg::A0).call("leaf").ret();
        b.routine("leaf").copy(Reg::A0, Reg::V0).ret();
        b.build().unwrap()
    }

    #[test]
    fn reanalyze_matches_scratch_after_a_delete() {
        let p = sample();
        let mut cache = AnalysisCache::new(AnalysisOptions::default());
        cache.analyze(&p);

        // Delete the dead `def t0` in main.
        let addr = p.routines()[0].addr();
        let (q, dirty) = Rewriter::new(&p).delete(addr).finish().unwrap();
        assert_eq!(dirty, vec![RoutineId::from_index(0)]);

        let incr = cache.reanalyze(&q, &dirty);
        assert_eq!(incr.stats.routines_reanalyzed, 1);
        assert_eq!(incr.stats.routines_reused, 2);

        let scratch = analyze_with(&q, &AnalysisOptions::default());
        assert_eq!(incr.summary, scratch.summary);
        assert_eq!(incr.stats.memory_bytes, scratch.stats.memory_bytes);
        assert_eq!(incr.psg, scratch.psg);
    }

    #[test]
    fn dirty_callee_resets_its_callers() {
        let p = sample();
        let mut cache = AnalysisCache::new(AnalysisOptions::default());
        cache.analyze(&p);

        // Delete the `copy a0, v0` inside `leaf` — the last routine, so
        // nothing shifts and only `leaf` is dirty. Its summary changes
        // (V0 is no longer call-defined), so the seeded rerun must reach
        // both callers (`main` and `mid`) through the caller closure and
        // still match scratch exactly.
        let leaf = p.routine_by_name("leaf").unwrap();
        let addr = p.routine(leaf).addr();
        let (q, dirty) = Rewriter::new(&p).delete(addr).finish().unwrap();
        assert_eq!(dirty, vec![leaf]);

        let incr = cache.reanalyze(&q, &dirty);
        assert_eq!(incr.stats.routines_reanalyzed, 1);
        assert_eq!(incr.stats.routines_reused, 2);
        let scratch = analyze_with(&q, &AnalysisOptions::default());
        assert_eq!(incr.summary, scratch.summary);
        assert_eq!(incr.psg, scratch.psg);
    }

    #[test]
    fn empty_dirty_set_reuses_everything() {
        let p = sample();
        let mut cache = AnalysisCache::new(AnalysisOptions::default());
        let memory = cache.analyze(&p).stats.memory_bytes;
        let a = cache.reanalyze(&p, &[]);
        assert_eq!(a.stats.routines_reanalyzed, 0);
        assert_eq!(a.stats.routines_reused, 3);
        assert_eq!(a.stats.phase1_visits, 0);
        assert_eq!(a.stats.memory_bytes, memory);
    }

    #[test]
    fn routine_count_change_falls_back_to_scratch() {
        let p = sample();
        let mut cache = AnalysisCache::new(AnalysisOptions::default());
        cache.analyze(&p);

        let mut b = ProgramBuilder::new();
        b.routine("only").def(Reg::A0).put_int().halt();
        let q = b.build().unwrap();
        let a = cache.reanalyze(&q, &[RoutineId::from_index(0)]);
        assert_eq!(a.stats.routines_reanalyzed, 1);
        assert_eq!(a.stats.routines_reused, 0);
        let scratch = analyze_with(&q, &AnalysisOptions::default());
        assert_eq!(a.summary, scratch.summary);
    }

    #[test]
    fn query_on_a_full_cache_slices_the_analysis() {
        let p = sample();
        let mut cache = AnalysisCache::new(AnalysisOptions::default());
        cache.analyze(&p);
        let mid = p.routine_by_name("mid").unwrap();
        let (answer, stats) = cache.query(&p, &Query::Summary(mid));
        assert!(stats.answered_from_full);
        assert_eq!(stats.visits, 0);
        let s = cache.analysis().unwrap().summary.routine(mid);
        assert_eq!(
            answer,
            QueryAnswer::Summary {
                call_used: s.call_used.clone(),
                call_defined: s.call_defined.clone(),
                call_killed: s.call_killed.clone(),
                saved_restored: s.saved_restored,
            }
        );
        let main = p.routine_by_name("main").unwrap();
        let (r, _) = cache.query(&p, &Query::Reaches { caller: main, callee: mid });
        assert_eq!(r, QueryAnswer::Reaches(true));
        let (r, _) = cache.query(&p, &Query::Reaches { caller: mid, callee: main });
        assert_eq!(r, QueryAnswer::Reaches(false));
    }

    #[test]
    fn queries_then_reanalyze_promotes_the_engine() {
        let p = sample();
        let mut cache = AnalysisCache::new(AnalysisOptions::default());

        // Demand path on a cold cache: an engine is built and solves only
        // the query's cone.
        let leaf = p.routine_by_name("leaf").unwrap();
        let (_, stats) = cache.query(&p, &Query::Summary(leaf));
        assert!(!stats.answered_from_full);
        assert!(stats.phase1_components_solved > 0);
        assert!(cache.analysis().is_none());
        assert!(cache.heap_bytes() > 0);

        // An edit later: the engine promotes into the cached analysis of
        // the pre-edit program, and the incremental patching proceeds as
        // if `analyze` had run — only the dirty routine is re-analyzed.
        let addr = p.routine(leaf).addr();
        let (q, dirty) = Rewriter::new(&p).delete(addr).finish().unwrap();
        let incr = cache.reanalyze(&q, &dirty);
        assert_eq!(incr.stats.routines_reanalyzed, 1);
        assert_eq!(incr.stats.routines_reused, 2);
        let scratch = analyze_with(&q, &AnalysisOptions::default());
        assert_eq!(incr.summary, scratch.summary);
        assert_eq!(incr.psg, scratch.psg);
        assert_eq!(incr.stats.memory_bytes, scratch.stats.memory_bytes);
    }

    #[test]
    fn into_analysis_drains_a_query_engine() {
        let p = sample();
        let mut cache = AnalysisCache::new(AnalysisOptions::default());
        let main = p.routine_by_name("main").unwrap();
        cache.query(&p, &Query::LiveAtEntry(main));
        let drained = cache.into_analysis().expect("engine promotes");
        let scratch = analyze_with(&p, &AnalysisOptions::default());
        assert_eq!(drained.summary, scratch.summary);
        assert_eq!(drained.psg, scratch.psg);
        assert_eq!(drained.stats.memory_bytes, scratch.stats.memory_bytes);
    }

    #[test]
    fn cold_cache_reanalyze_is_a_full_run() {
        let p = sample();
        let mut cache = AnalysisCache::new(AnalysisOptions::default());
        assert!(cache.analysis().is_none());
        let a = reanalyze(&mut cache, &p, &[RoutineId::from_index(1)]);
        assert_eq!(a.stats.routines_reanalyzed, 3);
        assert_eq!(a.stats.routines_reused, 0);
        cache.invalidate();
        assert!(cache.analysis().is_none());
    }
}
