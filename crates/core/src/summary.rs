//! Per-routine and per-call-site register summaries (§2 of the paper).

use spike_cfg::{CallTarget, ProgramCfg, TermKind};
use spike_isa::{CallingStandard, CloneExact, HeapSize, RegSet};
use spike_program::{Program, RoutineId};

use crate::psg::Psg;

/// The interprocedural dataflow summary of one routine (§2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoutineSummary {
    /// Per entrance: registers that may be used by a call to this
    /// entrance before being defined (`MAY-USE`, callee-saved filtered).
    pub call_used: Vec<RegSet>,
    /// Per entrance: registers that must be defined by a call to this
    /// entrance (`MUST-DEF`, callee-saved filtered).
    pub call_defined: Vec<RegSet>,
    /// Per entrance: registers that may be overwritten by a call to this
    /// entrance (`MAY-DEF`, callee-saved filtered).
    pub call_killed: Vec<RegSet>,
    /// Per entrance: registers live at the entrance, including uses
    /// reached only after returning to a caller.
    pub live_at_entry: Vec<RegSet>,
    /// Per exit (in the CFG's exit order): registers live at the exit,
    /// i.e. that may be used along some valid return path.
    pub live_at_exit: Vec<RegSet>,
    /// Callee-saved registers the routine saves and restores (§3.4).
    pub saved_restored: RegSet,
}

impl HeapSize for RoutineSummary {
    fn heap_bytes(&self) -> usize {
        self.call_used.heap_bytes()
            + self.call_defined.heap_bytes()
            + self.call_killed.heap_bytes()
            + self.live_at_entry.heap_bytes()
            + self.live_at_exit.heap_bytes()
    }
}

impl CloneExact for RoutineSummary {
    fn clone_exact(&self) -> RoutineSummary {
        RoutineSummary {
            call_used: self.call_used.clone_exact(),
            call_defined: self.call_defined.clone_exact(),
            call_killed: self.call_killed.clone_exact(),
            live_at_entry: self.live_at_entry.clone_exact(),
            live_at_exit: self.live_at_exit.clone_exact(),
            saved_restored: self.saved_restored,
        }
    }
}

/// What a specific call site does to registers, as seen by the caller.
/// This is the label of the call-summary instruction of §2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CallSiteSummary {
    /// Registers the call may read (`call-used`).
    pub used: RegSet,
    /// Registers the call must write (`call-defined`).
    pub defined: RegSet,
    /// Registers the call may overwrite (`call-killed`).
    pub killed: RegSet,
}

/// The complete analysis result over a program: one [`RoutineSummary`] per
/// routine, resolvable to per-call-site summaries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProgramSummary {
    routines: Vec<RoutineSummary>,
    calling_standard: CallingStandard,
}

impl ProgramSummary {
    /// Extracts the summaries from a converged PSG.
    pub(crate) fn from_psg(psg: &Psg, calling_standard: CallingStandard) -> ProgramSummary {
        let routines = psg
            .all_routine_nodes()
            .iter()
            .map(|rn| {
                let csr = rn.saved_restored();
                RoutineSummary {
                    call_used: rn.entries().iter().map(|&n| psg.may_use(n) - csr).collect(),
                    call_defined: rn.entries().iter().map(|&n| psg.must_def(n) - csr).collect(),
                    call_killed: rn.entries().iter().map(|&n| psg.may_def(n) - csr).collect(),
                    live_at_entry: rn.entries().iter().map(|&n| psg.live(n)).collect(),
                    live_at_exit: rn.exits().iter().map(|&n| psg.live(n)).collect(),
                    saved_restored: csr,
                }
            })
            .collect();
        ProgramSummary { routines, calling_standard }
    }

    /// The summary of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analyzed program.
    #[inline]
    pub fn routine(&self, id: RoutineId) -> &RoutineSummary {
        &self.routines[id.index()]
    }

    /// All routine summaries, indexed by routine id.
    #[inline]
    pub fn routines(&self) -> &[RoutineSummary] {
        &self.routines
    }

    /// The calling standard the analysis assumed.
    #[inline]
    pub fn calling_standard(&self) -> &CallingStandard {
        &self.calling_standard
    }

    /// The call-summary label for one callee entrance.
    pub fn entry_summary(&self, id: RoutineId, entry: usize) -> CallSiteSummary {
        let r = self.routine(id);
        CallSiteSummary {
            used: r.call_used[entry],
            defined: r.call_defined[entry],
            killed: r.call_killed[entry],
        }
    }

    /// The conservative summary for a call to an unknown target (§3.5).
    pub fn unknown_call_summary(&self) -> CallSiteSummary {
        CallSiteSummary {
            used: self.calling_standard.unknown_call_used(),
            defined: self.calling_standard.unknown_call_defined(),
            killed: self.calling_standard.unknown_call_killed(),
        }
    }

    /// Resolves the call-summary for the call block `block` of routine
    /// `routine` in `cfg`. Multi-target indirect calls take the union of
    /// the targets' used/killed sets and the intersection of their defined
    /// sets.
    ///
    /// Returns `None` if the block is not a call block.
    pub fn call_site(
        &self,
        cfg: &ProgramCfg,
        routine: RoutineId,
        block: spike_cfg::BlockId,
    ) -> Option<CallSiteSummary> {
        let TermKind::Call { target, .. } = cfg.routine_cfg(routine).block(block).term() else {
            return None;
        };
        Some(match target {
            CallTarget::Direct(callee, entry) => self.entry_summary(*callee, *entry),
            CallTarget::IndirectKnown(list) => {
                let mut it = list.iter();
                let &(c0, e0) = it.next().expect("known target list is non-empty");
                let mut s = self.entry_summary(c0, e0);
                for &(c, e) in it {
                    let t = self.entry_summary(c, e);
                    s.used |= t.used;
                    s.killed |= t.killed;
                    s.defined &= t.defined;
                }
                s
            }
            CallTarget::IndirectUnknown => self.unknown_call_summary(),
            CallTarget::IndirectHinted { used, defined, killed } => {
                CallSiteSummary { used: *used, defined: *defined, killed: *killed }
            }
        })
    }

    /// Resolves the call-summary for the call instruction at word address
    /// `addr`, or `None` if no call block ends there.
    pub fn call_site_at(
        &self,
        program: &Program,
        cfg: &ProgramCfg,
        addr: u32,
    ) -> Option<CallSiteSummary> {
        let routine = program.routine_containing(addr)?;
        let rcfg = cfg.routine_cfg(routine);
        let block = rcfg.block_containing(addr)?;
        (rcfg.block(block).term_addr() == addr)
            .then(|| self.call_site(cfg, routine, block))
            .flatten()
    }
}

impl HeapSize for ProgramSummary {
    fn heap_bytes(&self) -> usize {
        self.routines.heap_bytes()
    }
}

impl CloneExact for ProgramSummary {
    fn clone_exact(&self) -> ProgramSummary {
        ProgramSummary {
            routines: self.routines.clone_exact(),
            calling_standard: self.calling_standard,
        }
    }
}

impl spike_isa::Snap for ProgramSummary {
    fn snap(&self, w: &mut spike_isa::SnapWriter) {
        spike_isa::Snap::snap(&self.routines, w);
        spike_isa::Snap::snap(&self.calling_standard, w);
    }
    fn unsnap(r: &mut spike_isa::SnapReader<'_>) -> Result<Self, spike_isa::SnapError> {
        Ok(ProgramSummary {
            routines: spike_isa::Snap::unsnap(r)?,
            calling_standard: spike_isa::Snap::unsnap(r)?,
        })
    }
}
