//! [`Snap`] encodings for the converged analysis: the PSG, routine
//! summaries, stack-slot analysis, CFGs, and the stage statistics —
//! everything `spike-served` keeps per warm cache entry.
//!
//! The contract mirrors [`CloneExact`](spike_isa::CloneExact): a
//! decoded `Analysis` is indistinguishable from a live one, down to
//! `Vec` capacities and therefore down to
//! [`AnalysisStats::memory_bytes`]. That is what lets a snapshot
//! restore feed [`AnalysisCache::from_analysis`](crate::AnalysisCache)
//! as a re-analysis donor without tripping the incremental engine's
//! bit-identical-to-scratch assertions.
//!
//! The [`Program`](spike_program::Program) itself is *not* encoded
//! here: image bytes are the canonical program representation, and
//! `Program::from_image` is deterministic — snapshot containers store
//! the image and re-parse.

use spike_isa::{Snap, SnapError, SnapReader, SnapWriter};

use crate::analysis::{Analysis, AnalysisOptions, AnalysisStats, Representation, Scheduler};
use crate::psg::{Edge, EdgeId, EdgeKind, NodeId, NodeKind, Psg, RoutineNodes};
use crate::stack::{FrameModel, RoutineStack, Slot, StackSummary};
use crate::summary::RoutineSummary;

impl Snap for NodeId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.index() as u32);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NodeId::from_index(r.get_u32()? as usize))
    }
}

impl Snap for EdgeId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.index() as u32);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(EdgeId::from_index(r.get_u32()? as usize))
    }
}

impl Snap for NodeKind {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            NodeKind::Entry { routine, index } => {
                w.put_u8(0);
                routine.snap(w);
                index.snap(w);
            }
            NodeKind::Exit { routine, index } => {
                w.put_u8(1);
                routine.snap(w);
                index.snap(w);
            }
            NodeKind::Call { routine, block } => {
                w.put_u8(2);
                routine.snap(w);
                block.snap(w);
            }
            NodeKind::Return { routine, block } => {
                w.put_u8(3);
                routine.snap(w);
                block.snap(w);
            }
            NodeKind::Branch { routine, block } => {
                w.put_u8(4);
                routine.snap(w);
                block.snap(w);
            }
            NodeKind::Halt { routine, block } => {
                w.put_u8(5);
                routine.snap(w);
                block.snap(w);
            }
            NodeKind::UnknownJump { routine, block } => {
                w.put_u8(6);
                routine.snap(w);
                block.snap(w);
            }
            NodeKind::Diverge { routine } => {
                w.put_u8(7);
                routine.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let tag = r.get_u8()?;
        let routine = Snap::unsnap(r)?;
        Ok(match tag {
            0 => NodeKind::Entry { routine, index: Snap::unsnap(r)? },
            1 => NodeKind::Exit { routine, index: Snap::unsnap(r)? },
            2 => NodeKind::Call { routine, block: Snap::unsnap(r)? },
            3 => NodeKind::Return { routine, block: Snap::unsnap(r)? },
            4 => NodeKind::Branch { routine, block: Snap::unsnap(r)? },
            5 => NodeKind::Halt { routine, block: Snap::unsnap(r)? },
            6 => NodeKind::UnknownJump { routine, block: Snap::unsnap(r)? },
            7 => NodeKind::Diverge { routine },
            _ => return Err(SnapError::Malformed("node kind tag")),
        })
    }
}

impl Snap for EdgeKind {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            EdgeKind::FlowSummary => 0,
            EdgeKind::CallReturn => 1,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(EdgeKind::FlowSummary),
            1 => Ok(EdgeKind::CallReturn),
            _ => Err(SnapError::Malformed("edge kind tag")),
        }
    }
}

impl Snap for Edge {
    fn snap(&self, w: &mut SnapWriter) {
        self.from.snap(w);
        self.to.snap(w);
        self.kind.snap(w);
        self.may_use.snap(w);
        self.may_def.snap(w);
        self.must_def.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Edge {
            from: Snap::unsnap(r)?,
            to: Snap::unsnap(r)?,
            kind: Snap::unsnap(r)?,
            may_use: Snap::unsnap(r)?,
            may_def: Snap::unsnap(r)?,
            must_def: Snap::unsnap(r)?,
        })
    }
}

impl Snap for RoutineNodes {
    fn snap(&self, w: &mut SnapWriter) {
        self.entries.snap(w);
        self.exits.snap(w);
        self.calls.snap(w);
        self.branches.snap(w);
        self.halts.snap(w);
        self.unknown_jumps.snap(w);
        self.diverge.snap(w);
        self.saved_restored.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RoutineNodes {
            entries: Snap::unsnap(r)?,
            exits: Snap::unsnap(r)?,
            calls: Snap::unsnap(r)?,
            branches: Snap::unsnap(r)?,
            halts: Snap::unsnap(r)?,
            unknown_jumps: Snap::unsnap(r)?,
            diverge: Snap::unsnap(r)?,
            saved_restored: Snap::unsnap(r)?,
        })
    }
}

impl Snap for Psg {
    fn snap(&self, w: &mut SnapWriter) {
        self.nodes.snap(w);
        self.edges.snap(w);
        self.out_edges.snap(w);
        self.in_edges.snap(w);
        self.routines.snap(w);
        self.cr_sources.snap(w);
        self.entry_cr_edges.snap(w);
        self.return_exit_targets.snap(w);
        self.pinned.snap(w);
        self.uj_live.snap(w);
        self.may_use.snap(w);
        self.may_def.snap(w);
        self.must_def.snap(w);
        self.live.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Psg {
            nodes: Snap::unsnap(r)?,
            edges: Snap::unsnap(r)?,
            out_edges: Snap::unsnap(r)?,
            in_edges: Snap::unsnap(r)?,
            routines: Snap::unsnap(r)?,
            cr_sources: Snap::unsnap(r)?,
            entry_cr_edges: Snap::unsnap(r)?,
            return_exit_targets: Snap::unsnap(r)?,
            pinned: Snap::unsnap(r)?,
            uj_live: Snap::unsnap(r)?,
            may_use: Snap::unsnap(r)?,
            may_def: Snap::unsnap(r)?,
            must_def: Snap::unsnap(r)?,
            live: Snap::unsnap(r)?,
        })
    }
}

impl Snap for RoutineSummary {
    fn snap(&self, w: &mut SnapWriter) {
        self.call_used.snap(w);
        self.call_defined.snap(w);
        self.call_killed.snap(w);
        self.live_at_entry.snap(w);
        self.live_at_exit.snap(w);
        self.saved_restored.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RoutineSummary {
            call_used: Snap::unsnap(r)?,
            call_defined: Snap::unsnap(r)?,
            call_killed: Snap::unsnap(r)?,
            live_at_entry: Snap::unsnap(r)?,
            live_at_exit: Snap::unsnap(r)?,
            saved_restored: Snap::unsnap(r)?,
        })
    }
}

impl Snap for Slot {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_i64(self.entry_off);
        self.width.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Slot { entry_off: r.get_i64()?, width: Snap::unsnap(r)? })
    }
}

impl Snap for FrameModel {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_i64(self.frame_size);
        self.slots.snap(w);
        self.escaped.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FrameModel {
            frame_size: r.get_i64()?,
            slots: Snap::unsnap(r)?,
            escaped: Snap::unsnap(r)?,
        })
    }
}

impl Snap for StackSummary {
    fn snap(&self, w: &mut SnapWriter) {
        self.unbalanced.snap(w);
        self.opaque.snap(w);
        self.refs_above.snap(w);
        self.mods_above.snap(w);
        self.kills_above.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(StackSummary {
            unbalanced: Snap::unsnap(r)?,
            opaque: Snap::unsnap(r)?,
            refs_above: Snap::unsnap(r)?,
            mods_above: Snap::unsnap(r)?,
            kills_above: Snap::unsnap(r)?,
        })
    }
}

impl Snap for RoutineStack {
    fn snap(&self, w: &mut SnapWriter) {
        self.frame.snap(w);
        self.summary.snap(w);
        self.sp_disp_in.snap(w);
        self.must_defined_in.snap(w);
        self.live_out.snap(w);
        self.cyclic.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RoutineStack {
            frame: Snap::unsnap(r)?,
            summary: Snap::unsnap(r)?,
            sp_disp_in: Snap::unsnap(r)?,
            must_defined_in: Snap::unsnap(r)?,
            live_out: Snap::unsnap(r)?,
            cyclic: Snap::unsnap(r)?,
        })
    }
}

impl Snap for Scheduler {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            Scheduler::SccWave => 0,
            Scheduler::Fifo => 1,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(Scheduler::SccWave),
            1 => Ok(Scheduler::Fifo),
            _ => Err(SnapError::Malformed("scheduler tag")),
        }
    }
}

impl Snap for Representation {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            Representation::Sparse => 0,
            Representation::Dense => 1,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(Representation::Sparse),
            1 => Ok(Representation::Dense),
            _ => Err(SnapError::Malformed("representation tag")),
        }
    }
}

impl Snap for AnalysisStats {
    fn snap(&self, w: &mut SnapWriter) {
        self.cfg_build.snap(w);
        self.init.snap(w);
        self.psg_build.snap(w);
        self.phase1.snap(w);
        self.phase2.snap(w);
        self.stack_build.snap(w);
        self.phase1_visits.snap(w);
        self.phase2_visits.snap(w);
        self.stack_forward_visits.snap(w);
        self.stack_backward_visits.snap(w);
        self.representation.snap(w);
        self.front_end_workers.snap(w);
        self.phase_workers.snap(w);
        self.waves.snap(w);
        self.routines_reanalyzed.snap(w);
        self.routines_reused.snap(w);
        self.memory_bytes.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(AnalysisStats {
            cfg_build: Snap::unsnap(r)?,
            init: Snap::unsnap(r)?,
            psg_build: Snap::unsnap(r)?,
            phase1: Snap::unsnap(r)?,
            phase2: Snap::unsnap(r)?,
            stack_build: Snap::unsnap(r)?,
            phase1_visits: Snap::unsnap(r)?,
            phase2_visits: Snap::unsnap(r)?,
            stack_forward_visits: Snap::unsnap(r)?,
            stack_backward_visits: Snap::unsnap(r)?,
            representation: Snap::unsnap(r)?,
            front_end_workers: Snap::unsnap(r)?,
            phase_workers: Snap::unsnap(r)?,
            waves: Snap::unsnap(r)?,
            routines_reanalyzed: Snap::unsnap(r)?,
            routines_reused: Snap::unsnap(r)?,
            memory_bytes: Snap::unsnap(r)?,
        })
    }
}

impl Snap for crate::LoopStats {
    fn snap(&self, w: &mut SnapWriter) {
        self.loops.snap(w);
        self.irreducible_loops.snap(w);
        self.max_depth.snap(w);
        self.blocks_in_loops.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::LoopStats {
            loops: Snap::unsnap(r)?,
            irreducible_loops: Snap::unsnap(r)?,
            max_depth: Snap::unsnap(r)?,
            blocks_in_loops: Snap::unsnap(r)?,
        })
    }
}

impl Snap for Analysis {
    fn snap(&self, w: &mut SnapWriter) {
        self.psg.snap(w);
        self.summary.snap(w);
        self.stack.snap(w);
        self.cfg.snap(w);
        self.loops.snap(w);
        self.stats.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Analysis {
            psg: Snap::unsnap(r)?,
            summary: Snap::unsnap(r)?,
            stack: Snap::unsnap(r)?,
            cfg: Snap::unsnap(r)?,
            loops: Snap::unsnap(r)?,
            stats: Snap::unsnap(r)?,
        })
    }
}

impl Snap for AnalysisOptions {
    fn snap(&self, w: &mut SnapWriter) {
        self.branch_nodes.snap(w);
        self.callee_saved_filter.snap(w);
        self.calling_standard.snap(w);
        self.exported_live_at_exit.snap(w);
        self.threads.snap(w);
        self.scheduler.snap(w);
        self.representation.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(AnalysisOptions {
            branch_nodes: Snap::unsnap(r)?,
            callee_saved_filter: Snap::unsnap(r)?,
            calling_standard: Snap::unsnap(r)?,
            exported_live_at_exit: Snap::unsnap(r)?,
            threads: Snap::unsnap(r)?,
            scheduler: Snap::unsnap(r)?,
            representation: Snap::unsnap(r)?,
        })
    }
}

/// A 64-bit FNV-1a fingerprint of the semantics-affecting analysis
/// options. Snapshot files carry it so a daemon only restores entries
/// produced under its *own* configuration — an entry analyzed with a
/// different calling standard or filter setting would be silently
/// wrong, not just stale.
///
/// `threads` is deliberately excluded: results (including
/// `memory_bytes`) are bit-identical at every worker count, so a
/// snapshot from a 4-worker daemon is valid donor state for an
/// 8-worker one. `scheduler`/`representation` are *included* because
/// the effort counters inside the cached `AnalysisStats` depend on
/// them, and stats flow into diag output.
pub fn options_fingerprint(options: &AnalysisOptions) -> u64 {
    let mut w = SnapWriter::new();
    AnalysisOptions { threads: 0, ..options.clone() }.snap(&mut w);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in w.into_bytes().iter() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_with;
    use spike_isa::{HeapSize, Reg, RegSet};
    use spike_program::ProgramBuilder;

    fn sample_analysis() -> (spike_program::Program, Analysis) {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("mid").put_int().halt();
        b.routine("mid").def(Reg::T0).call("leaf").ret();
        b.routine("leaf").copy(Reg::A0, Reg::V0).ret();
        let p = b.build().unwrap();
        let a = analyze_with(&p, &AnalysisOptions::default());
        (p, a)
    }

    #[test]
    fn analysis_roundtrips_bit_identically() {
        let (_, a) = sample_analysis();
        let mut w = SnapWriter::new();
        a.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = Analysis::unsnap(&mut r).expect("analysis decodes");
        assert!(r.is_exhausted(), "decoder must consume the whole payload");
        assert_eq!(back.psg, a.psg);
        assert_eq!(back.summary, a.summary);
        assert_eq!(back.stack, a.stack);
        assert_eq!(back.cfg, a.cfg);
        // Stats have no PartialEq; the Debug rendering covers every field.
        assert_eq!(format!("{:?}", back.stats), format!("{:?}", a.stats));
        // The capacity contract: the restored analysis charges exactly
        // the same memory as the live one, like CloneExact does.
        assert_eq!(
            back.cfg.heap_bytes()
                + back.psg.heap_bytes()
                + back.summary.heap_bytes()
                + back.stack.heap_bytes(),
            a.stats.memory_bytes
        );
    }

    #[test]
    fn restored_analysis_is_a_valid_incremental_donor() {
        // The real consumer: a decoded analysis seeds an AnalysisCache
        // and must behave exactly like a CloneExact fork of the live
        // one (debug builds assert equality with a scratch run inside
        // reanalyze, including memory_bytes).
        let (p, a) = sample_analysis();
        let mut w = SnapWriter::new();
        a.snap(&mut w);
        let bytes = w.into_bytes();
        let back = Analysis::unsnap(&mut SnapReader::new(&bytes)).unwrap();

        let mut cache = crate::AnalysisCache::from_analysis(AnalysisOptions::default(), back);
        let dirty: Vec<_> = p.iter().map(|(rid, _)| rid).take(1).collect();
        cache.reanalyze(&p, &dirty);
        let re = cache.into_analysis().unwrap();
        let scratch = analyze_with(&p, &AnalysisOptions::default());
        assert_eq!(re.summary, scratch.summary);
        assert_eq!(re.stats.memory_bytes, scratch.stats.memory_bytes);
    }

    #[test]
    fn truncated_analysis_payloads_error_cleanly() {
        let (_, a) = sample_analysis();
        let mut w = SnapWriter::new();
        a.snap(&mut w);
        let bytes = w.into_bytes();
        // Sample cut points across the payload (every offset would take
        // minutes on a payload this size).
        for cut in (0..bytes.len()).step_by(97) {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(Analysis::unsnap(&mut r).is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn options_fingerprint_tracks_semantics_not_threads() {
        let base = AnalysisOptions::default();
        let fp = options_fingerprint(&base);
        assert_eq!(fp, options_fingerprint(&AnalysisOptions { threads: 7, ..base.clone() }));
        assert_ne!(
            fp,
            options_fingerprint(&AnalysisOptions { branch_nodes: false, ..base.clone() })
        );
        assert_ne!(
            fp,
            options_fingerprint(&AnalysisOptions {
                exported_live_at_exit: RegSet::of(&[Reg::S0]),
                ..base.clone()
            })
        );
        assert_ne!(
            fp,
            options_fingerprint(&AnalysisOptions { representation: Representation::Dense, ..base })
        );
    }
}
