//! Hand-rolled JSON shared by every tool in the workspace.
//!
//! The build is fully offline — no serialization dependency exists — so
//! the workspace writes its machine-readable output (lint reports, bench
//! artifacts, the serve protocol, daemon counters) by hand. This module
//! keeps that to *one* implementation: one escaping writer (extracted
//! from `spike-lint`, which pins it with a golden test) and one
//! recursive-descent parser, so there is a single escaping bug surface.
//!
//! [`Json`] values preserve object key order, and the writer emits keys
//! in that stored order with no whitespace, so a value always renders to
//! the same bytes — the stability the serve protocol and the CI schema
//! checks rely on.

use std::fmt;

/// Appends `s` to `out` as a quoted JSON string, escaping quotes,
/// backslashes, and control characters.
pub fn escape_into(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed or constructed JSON value.
///
/// Objects keep their members in insertion order (duplicate keys keep the
/// first occurrence on parse), so writing a value back out is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that parsed (or was built) as an integer.
    Int(i64),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in member order.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed. `offset` is a byte index into the input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting bound for the parser: network input must not be able to
/// overflow the stack with `[[[[…`.
const MAX_DEPTH: usize = 128;

impl Json {
    /// Parses `text` as a single JSON value; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// The member of an object by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as an unsigned count.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes into `out` with no whitespace, members in stored order.
    pub fn write(&self, out: &mut String) {
        use fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    // JSON has no NaN/Infinity; null is the least-bad spelling.
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Counts beyond i64::MAX cannot occur in this workspace; saturate
        // rather than wrap so a bug stays visible instead of going negative.
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected {")?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected : after object key")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            // First occurrence wins, so re-serializing stays deterministic.
            if !members.iter().any(|(k, _)| *k == key) {
                members.push((key, v));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected a string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale; they are valid UTF-8 because
            // the input is a &str.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("runs split on ASCII bytes keep UTF-8 boundaries"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.eat(b'u', "expected \\u for low surrogate")?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_string();
        if integral {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Float(x)),
            _ => Err(JsonError { offset: start, message: "invalid number" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        Json::parse(text).expect("parses").to_string()
    }

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("2.5"), "2.5");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_keep_order() {
        let text = "{\"b\":1,\"a\":[1,2,{\"x\":null}],\"c\":\"s\"}";
        assert_eq!(roundtrip(text), text);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        let text = v.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".to_string()));
        assert!(Json::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn errors_carry_position() {
        let e = Json::parse("[1,]").unwrap_err();
        assert_eq!(e.offset, 3);
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("1e999").is_err(), "overflowing exponent is rejected");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut text = String::new();
        for _ in 0..500 {
            text.push('[');
        }
        for _ in 0..500 {
            text.push(']');
        }
        assert_eq!(Json::parse(&text).unwrap_err().message, "nesting too deep");
    }

    #[test]
    fn duplicate_keys_keep_the_first() {
        assert_eq!(roundtrip("{\"a\":1,\"a\":2}"), "{\"a\":1}");
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"n\":3,\"s\":\"x\",\"b\":true,\"a\":[1],\"f\":1.5}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }
}
