//! The two interprocedural dataflow phases (§3.2, §3.3).
//!
//! Phase 1 (Figure 8) computes each routine's `MAY-USE`/`MAY-DEF`/
//! `MUST-DEF` at its entry nodes — the call-used / call-killed /
//! call-defined summaries — propagating information from callees to
//! callers by copying entry-node values onto the call-return edges that
//! target the routine. Phase 2 (Figure 10) computes liveness
//! (live-at-entry / live-at-exit), propagating from callers to callees by
//! broadcasting each return node's liveness to the exits of every routine
//! that could return to it.
//!
//! Both phases run a monotone worklist to the least fixpoint. The paper
//! writes the equations as per-edge assignments; with several outgoing
//! edges the combination is union for the `MAY` sets and intersection for
//! `MUST-DEF` (see DESIGN.md). Because every value only grows, chaotic
//! iteration from the empty sets converges to the meet-over-all-valid-
//! paths solution.

use spike_isa::RegSet;

use crate::psg::{EdgeKind, NodeId, NodeKind, Psg};
use crate::worklist::FifoWorklist;

/// The phase-1 initialization value of a node: `(MAY-USE, MAY-DEF,
/// MUST-DEF)`. `MAY` sets start at ⊥ and grow; `MUST-DEF` is a
/// greatest-fixpoint problem and starts at ⊤ for interior nodes,
/// iterating downward. Sinks fix the boundary:
///
/// * exits: nothing more happens within the callee — `MUST-DEF` = ∅
///   (the caller takes over);
/// * unknown jumps (§3.5): may use and clobber anything, guarantee
///   nothing — `MAY` = ⊤, `MUST-DEF` = ∅;
/// * halts and diverging regions: no continuation ever returns, so
///   `MUST-DEF` is vacuously ⊤ — paths that cannot return must not
///   weaken a caller-visible intersection — and the `MAY` sets are ∅.
pub(crate) fn phase1_init_value(kind: NodeKind, uj_live: RegSet) -> (RegSet, RegSet, RegSet) {
    match kind {
        // The default is all registers live/clobbered; a §3.5 hint
        // narrows the live set.
        NodeKind::UnknownJump { .. } => (uj_live, RegSet::ALL, RegSet::EMPTY),
        NodeKind::Halt { .. } | NodeKind::Diverge { .. } => {
            (RegSet::EMPTY, RegSet::EMPTY, RegSet::ALL)
        }
        NodeKind::Exit { .. } => (RegSet::EMPTY, RegSet::EMPTY, RegSet::EMPTY),
        _ => (RegSet::EMPTY, RegSet::EMPTY, RegSet::ALL),
    }
}

/// The phase-2 initialization value of a node: liveness starts at ⊥
/// everywhere except the pinned unknown-jump sinks, which hold their
/// (possibly §3.5-hinted) live set throughout.
pub(crate) fn phase2_init_value(kind: NodeKind, uj_live: RegSet) -> RegSet {
    match kind {
        NodeKind::UnknownJump { .. } => uj_live,
        _ => RegSet::EMPTY,
    }
}

/// Runs phase 1 to convergence. Returns the number of node evaluations
/// (a proxy for analysis effort reported alongside the stage timers).
///
/// The phase is stratified: `MAY-DEF`/`MUST-DEF` are solved to their
/// fixpoint first, then `MAY-USE` with the (now frozen) `MUST-DEF` kill
/// sets. `MAY-USE`'s equation subtracts `MUST-DEF[E]`, so it is not
/// monotone while the kill sets are still growing; solving the kill sets
/// first restores monotonicity and yields the meet-over-valid-paths
/// solution for both strata.
///
/// `seed_order` gives the initial worklist order; callers pass PSG nodes
/// grouped by routine in bottom-up call-graph order (callees before
/// callers), which lets most call-return edges receive their final labels
/// on the first visit.
pub(crate) fn run_phase1(psg: &mut Psg, seed_order: &[NodeId]) -> usize {
    run_phase1_seeded(psg, seed_order, None)
}

/// Phase 1 with an optional *reset mask* for incremental re-analysis.
///
/// With `reset: None` this is a from-scratch run: every node is
/// (re)initialized and `seed_order` must cover every node. With a mask,
/// only nodes with `reset[i]` are reinitialized — together with the
/// call-return edges fed by reset entry nodes — while every other node
/// keeps its previously converged value, and `seed_order` contains only
/// the reset nodes. The caller (`crate::incremental`) guarantees the mask
/// is closed so that iteration never needs to re-evaluate a clean node;
/// see DESIGN.md "Incremental re-analysis" for the exactness argument.
pub(crate) fn run_phase1_seeded(
    psg: &mut Psg,
    seed_order: &[NodeId],
    reset: Option<&[bool]>,
) -> usize {
    let n = psg.nodes.len();
    debug_assert!(
        reset.map_or(seed_order.len() == n, |m| m.len() == n),
        "seed order (or reset mask) must cover every node"
    );
    let is_reset = |i: usize| reset.is_none_or(|m| m[i]);

    // Initialization; see `phase1_init_value` for the boundary rationale.
    for i in 0..n {
        if !is_reset(i) {
            continue;
        }
        let (may_use, may_def, must_def) = phase1_init_value(psg.nodes[i], psg.uj_live[i]);
        psg.may_use[i] = may_use;
        psg.may_def[i] = may_def;
        psg.must_def[i] = must_def;
        // A reset entry's call-return edges go back to their build-time
        // labels: the phase-1 broadcast that filled them is being redone.
        // (The reset mask is caller-closed, so every source entry of each
        // such edge is also reset — a partial reset could not reproduce
        // the from-scratch labels.)
        if reset.is_some() && matches!(psg.nodes[i], NodeKind::Entry { .. }) {
            for k in 0..psg.entry_cr_edges[i].len() {
                let e = psg.entry_cr_edges[i][k];
                let edge = &mut psg.edges[e.index()];
                debug_assert_eq!(edge.kind(), EdgeKind::CallReturn);
                edge.may_use = RegSet::EMPTY;
                edge.may_def = RegSet::EMPTY;
                edge.must_def = RegSet::ALL;
            }
        }
    }

    // ---- Stratum A: MAY-DEF and MUST-DEF. ----
    let mut wl = FifoWorklist::new(n);
    for &node in seed_order {
        wl.push(node.index());
    }
    let mut visits = 0usize;
    while let Some(xi) = wl.pop() {
        if psg.pinned[xi] || psg.out_edges[xi].is_empty() {
            continue;
        }
        visits += 1;

        let mut may_def = RegSet::EMPTY;
        let mut must_def = RegSet::EMPTY;
        let mut first = true;
        for &e in &psg.out_edges[xi] {
            let edge = &psg.edges[e.index()];
            let yi = edge.to().index();
            may_def |= edge.may_def() | psg.may_def[yi];
            let md = edge.must_def() | psg.must_def[yi];
            if first {
                must_def = md;
                first = false;
            } else {
                must_def &= md;
            }
        }
        debug_assert!(
            psg.may_def[xi].is_subset(may_def) && must_def.is_subset(psg.must_def[xi]),
            "stratum A: MAY-DEF grows, MUST-DEF shrinks"
        );
        if may_def == psg.may_def[xi] && must_def == psg.must_def[xi] {
            continue;
        }
        psg.may_def[xi] = may_def;
        psg.must_def[xi] = must_def;

        for &e in &psg.in_edges[xi] {
            wl.push(psg.edges[e.index()].from().index());
        }
        // §3.2 broadcast: an entry node's values flow onto every
        // call-return edge representing a call that targets it, filtered
        // by the routine's saved-and-restored callee-saved registers
        // (§3.4). Multi-target (indirect) calls meet over their targets.
        // (Indexed loop: `recompute_cr_defs` needs `&mut psg`, and the
        // edge list itself is never mutated — no clone per broadcast.)
        if matches!(psg.nodes[xi], NodeKind::Entry { .. }) {
            for k in 0..psg.entry_cr_edges[xi].len() {
                let e = psg.entry_cr_edges[xi][k];
                if recompute_cr_defs(psg, e) {
                    wl.push(psg.edges[e.index()].from().index());
                }
            }
        }
    }

    // ---- Stratum B: MAY-USE, with MUST-DEF kill sets frozen. ----
    let mut wl = FifoWorklist::new(n);
    for &node in seed_order {
        wl.push(node.index());
    }
    while let Some(xi) = wl.pop() {
        if psg.pinned[xi] || psg.out_edges[xi].is_empty() {
            continue;
        }
        visits += 1;

        let mut may_use = RegSet::EMPTY;
        for &e in &psg.out_edges[xi] {
            let edge = &psg.edges[e.index()];
            let yi = edge.to().index();
            may_use |= edge.may_use() | (psg.may_use[yi] - edge.must_def());
        }
        debug_assert!(
            psg.may_use[xi].is_subset(may_use),
            "stratum B values must grow monotonically"
        );
        if may_use == psg.may_use[xi] {
            continue;
        }
        psg.may_use[xi] = may_use;

        for &e in &psg.in_edges[xi] {
            wl.push(psg.edges[e.index()].from().index());
        }
        if matches!(psg.nodes[xi], NodeKind::Entry { .. }) {
            for k in 0..psg.entry_cr_edges[xi].len() {
                let e = psg.entry_cr_edges[xi][k];
                if recompute_cr_uses(psg, e) {
                    wl.push(psg.edges[e.index()].from().index());
                }
            }
        }
    }
    visits
}

/// Recomputes a call-return edge's `MAY-DEF`/`MUST-DEF` from its source
/// entry nodes; returns whether either changed.
fn recompute_cr_defs(psg: &mut Psg, e: crate::psg::EdgeId) -> bool {
    let sources = &psg.cr_sources[e.index()];
    debug_assert!(!sources.is_empty(), "only known-target edges are recomputed");
    let mut may_def = RegSet::EMPTY;
    let mut must_def = RegSet::EMPTY;
    let mut first = true;
    for &s in sources {
        let si = s.index();
        let csr = psg.routines[psg.nodes[si].routine().index()].saved_restored;
        may_def |= psg.may_def[si] - csr;
        let md = psg.must_def[si] - csr;
        if first {
            must_def = md;
            first = false;
        } else {
            must_def &= md;
        }
    }
    let edge = &mut psg.edges[e.index()];
    debug_assert_eq!(edge.kind(), EdgeKind::CallReturn);
    let changed = edge.may_def != may_def || edge.must_def != must_def;
    edge.may_def = may_def;
    edge.must_def = must_def;
    changed
}

/// Recomputes a call-return edge's `MAY-USE` from its source entry nodes;
/// returns whether it changed.
fn recompute_cr_uses(psg: &mut Psg, e: crate::psg::EdgeId) -> bool {
    let sources = &psg.cr_sources[e.index()];
    debug_assert!(!sources.is_empty(), "only known-target edges are recomputed");
    let mut may_use = RegSet::EMPTY;
    for &s in sources {
        let si = s.index();
        let csr = psg.routines[psg.nodes[si].routine().index()].saved_restored;
        may_use |= psg.may_use[si] - csr;
    }
    let edge = &mut psg.edges[e.index()];
    debug_assert_eq!(edge.kind(), EdgeKind::CallReturn);
    let changed = edge.may_use != may_use;
    edge.may_use = may_use;
    changed
}

/// Runs phase 2 to convergence. `exit_seeds` pre-loads liveness at exit
/// nodes of externally callable routines (exported routines and the
/// program entry, whose unseen callers are assumed to follow the calling
/// standard). Returns the number of node evaluations.
pub(crate) fn run_phase2(psg: &mut Psg, exit_seeds: &[(NodeId, RegSet)]) -> usize {
    run_phase2_seeded(psg, exit_seeds, None)
}

/// Phase 2 with an optional *reset mask* for incremental re-analysis.
///
/// With `reset: None` this is a from-scratch run. With a mask, only nodes
/// with `reset[i]` are reinitialized and seeded; clean nodes keep their
/// converged liveness. The mask is callee-closed (a reset return node's
/// broadcast only ever reaches reset exits), and the return→exit
/// broadcasts from *clean* callers are replayed once at initialization so
/// reset callees' exits recover the caller liveness they would have
/// accumulated from scratch — exit values are pure unions, so replaying
/// converged values is exact. See DESIGN.md "Incremental re-analysis".
pub(crate) fn run_phase2_seeded(
    psg: &mut Psg,
    exit_seeds: &[(NodeId, RegSet)],
    reset: Option<&[bool]>,
) -> usize {
    let n = psg.nodes.len();
    debug_assert!(reset.is_none_or(|m| m.len() == n), "reset mask must cover every node");
    let is_reset = |i: usize| reset.is_none_or(|m| m[i]);

    for i in 0..n {
        if !is_reset(i) {
            continue;
        }
        psg.live[i] = phase2_init_value(psg.nodes[i], psg.uj_live[i]);
    }
    // Seeds on clean exits are no-ops: their converged liveness already
    // contains the seed.
    for &(node, set) in exit_seeds {
        psg.live[node.index()] |= set;
    }
    if reset.is_some() {
        // Replay every return→exit broadcast into the reset subspace.
        // Clean callers contribute their converged (final) liveness, which
        // the rerun would otherwise never see because clean nodes are not
        // re-evaluated; reset callers contribute their freshly
        // reinitialized ∅, which is harmless under union and is superseded
        // as the worklist converges.
        for i in 0..n {
            if psg.return_exit_targets[i].is_empty() {
                continue;
            }
            let live = psg.live[i];
            for k in 0..psg.return_exit_targets[i].len() {
                let t = psg.return_exit_targets[i][k];
                if is_reset(t.index()) {
                    psg.live[t.index()] |= live;
                }
            }
        }
    }

    let mut wl = FifoWorklist::new(n);
    for i in (0..n).rev() {
        if is_reset(i) {
            wl.push(i);
        }
    }

    let mut visits = 0usize;
    while let Some(xi) = wl.pop() {
        if psg.pinned[xi] || psg.out_edges[xi].is_empty() {
            // Sinks (exits, halts, unknown jumps) are updated only by
            // seeds and broadcasts; nothing to evaluate.
            continue;
        }
        visits += 1;

        let mut live = psg.live[xi];
        for &e in &psg.out_edges[xi] {
            let edge = &psg.edges[e.index()];
            let yi = edge.to().index();
            live |= edge.may_use() | (psg.live[yi] - edge.must_def());
        }
        if live == psg.live[xi] {
            continue;
        }
        psg.live[xi] = live;

        for &e in &psg.in_edges[xi] {
            wl.push(psg.edges[e.index()].from().index());
        }

        // §3.3 broadcast: liveness at a return node flows to the exit
        // nodes of every routine that could return to it. (Indexed loop:
        // the target list is never mutated, only `live` and the worklist
        // are — no clone per broadcast.)
        for k in 0..psg.return_exit_targets[xi].len() {
            let ti = psg.return_exit_targets[xi][k].index();
            let merged = psg.live[ti] | live;
            if merged != psg.live[ti] {
                psg.live[ti] = merged;
                for &e in &psg.in_edges[ti] {
                    wl.push(psg.edges[e.index()].from().index());
                }
            }
        }
    }
    visits
}
