//! The Figure-6 dataflow solver: labels one flow-summary edge by solving
//! `MAY-USE`/`MAY-DEF`/`MUST-DEF` over the CFG subgraph its paths cover.

use spike_cfg::{BlockId, BlockSet, RoutineCfg};
use spike_isa::RegSet;

/// The register-summary label of one flow-summary edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct EdgeLabel {
    pub may_use: RegSet,
    pub may_def: RegSet,
    pub must_def: RegSet,
}

/// Reusable buffers for [`solve_edge`]. PSG construction solves one
/// subgraph per flow-summary edge — hundreds of thousands on large
/// programs — so per-edge allocations dominate without this.
pub(crate) struct FlowScratch {
    /// Block index → local dense index (`u32::MAX` = not in subgraph).
    local: Vec<u32>,
    members: Vec<BlockId>,
    may_use_in: Vec<RegSet>,
    may_def_in: Vec<RegSet>,
    must_def_in: Vec<RegSet>,
}

impl FlowScratch {
    pub(crate) fn new() -> FlowScratch {
        FlowScratch {
            local: Vec::new(),
            members: Vec::new(),
            may_use_in: Vec::new(),
            may_def_in: Vec::new(),
            must_def_in: Vec::new(),
        }
    }

    fn reset(&mut self, n_blocks: usize) {
        self.local.clear();
        self.local.resize(n_blocks, u32::MAX);
        self.members.clear();
        self.may_use_in.clear();
        self.may_def_in.clear();
        self.must_def_in.clear();
    }
}

/// Solves the Figure-6 equations for the flow-summary edge whose paths run
/// from the blocks in `starts` (the source location's start blocks) to the
/// terminal block `target`, over `subgraph` (the blocks on any such path).
///
/// Within the subgraph, successor arcs are restricted to subgraph members,
/// and `target` — the only block in the subgraph ending at a summary point
/// — contributes no successor arcs: paths end there. The returned label
/// combines the converged `IN` sets of the start blocks present in the
/// subgraph: union for the `MAY` sets, intersection for `MUST-DEF`.
///
/// `MAY-USE`/`MAY-DEF` grow from ⊥; `MUST-DEF` is a greatest-fixpoint
/// problem and iterates down from ⊤ (loop back-edges would otherwise
/// poison the intersection — see DESIGN.md on the Figure-6 deviation).
///
/// The framework is distributive and every subgraph block reaches `target`
/// by construction, so the iterative solution equals the
/// meet-over-all-paths solution (verified against a path-enumeration
/// oracle in the tests).
pub(crate) fn solve_edge(
    cfg: &RoutineCfg,
    subgraph: &BlockSet,
    target: BlockId,
    starts: &[BlockId],
    scratch: &mut FlowScratch,
) -> EdgeLabel {
    scratch.reset(cfg.blocks().len());
    for b in subgraph.iter() {
        scratch.local[b.index()] = scratch.members.len() as u32;
        scratch.members.push(b);
    }
    debug_assert!(!scratch.members.is_empty(), "edge subgraph must be non-empty");

    let n = scratch.members.len();
    scratch.may_use_in.resize(n, RegSet::EMPTY);
    scratch.may_def_in.resize(n, RegSet::EMPTY);
    scratch.must_def_in.resize(n, RegSet::ALL);
    let local = &scratch.local;
    let members = &scratch.members;
    let may_use_in = &mut scratch.may_use_in;
    let may_def_in = &mut scratch.may_def_in;
    let must_def_in = &mut scratch.must_def_in;

    // Iterate to fixpoint. Blocks are visited in descending address order,
    // which approximates postorder for reducible routine bodies and keeps
    // the number of sweeps small.
    let mut changed = true;
    while changed {
        changed = false;
        for li in (0..n).rev() {
            let b = members[li];
            let block = cfg.block(b);

            let mut may_use_out = RegSet::EMPTY;
            let mut may_def_out = RegSet::EMPTY;
            let mut must_def_out = RegSet::EMPTY;
            if b != target {
                let mut first = true;
                for &s in block.succs() {
                    let sl = local[s.index()];
                    if sl == u32::MAX {
                        continue; // arc leaves the subgraph: not on a path to target
                    }
                    let sl = sl as usize;
                    may_use_out |= may_use_in[sl];
                    may_def_out |= may_def_in[sl];
                    if first {
                        must_def_out = must_def_in[sl];
                        first = false;
                    } else {
                        must_def_out &= must_def_in[sl];
                    }
                }
                debug_assert!(!first, "non-target subgraph block {b} has no subgraph successor");
            }

            let new_may_use = block.ubd() | (may_use_out - block.def());
            let new_may_def = block.def() | may_def_out;
            let new_must_def = block.def() | must_def_out;
            if new_may_use != may_use_in[li]
                || new_may_def != may_def_in[li]
                || new_must_def != must_def_in[li]
            {
                may_use_in[li] = new_may_use;
                may_def_in[li] = new_may_def;
                must_def_in[li] = new_must_def;
                changed = true;
            }
        }
    }

    // Combine over the start blocks that actually reach the target.
    let mut label = EdgeLabel::default();
    let mut first = true;
    for &s in starts {
        let sl = local[s.index()];
        if sl == u32::MAX {
            continue;
        }
        let sl = sl as usize;
        label.may_use |= may_use_in[sl];
        label.may_def |= may_def_in[sl];
        if first {
            label.must_def = must_def_in[sl];
            first = false;
        } else {
            label.must_def &= must_def_in[sl];
        }
    }
    debug_assert!(!first, "no start block reaches the edge target");
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::{BranchCond, Reg};
    use spike_program::ProgramBuilder;

    /// Builds a CFG and runs `solve_edge` over the whole routine treating
    /// the unique exit block as the target and block 0 as the start.
    fn solve_whole(cfg: &RoutineCfg) -> EdgeLabel {
        let mut sub = BlockSet::new(cfg.blocks().len());
        for i in 0..cfg.blocks().len() {
            sub.insert(BlockId::from_index(i));
        }
        let target = cfg.exits()[0];
        let mut scratch = FlowScratch::new();
        solve_edge(cfg, &sub, target, &[BlockId::from_index(0)], &mut scratch)
    }

    fn cfg_for(build: impl FnOnce(&mut spike_program::RoutineBuilder)) -> RoutineCfg {
        let mut b = ProgramBuilder::new();
        build(b.routine("f"));
        let p = b.build().unwrap();
        RoutineCfg::build(&p, p.routine_by_name("f").unwrap())
    }

    #[test]
    fn straight_line_label() {
        // use a0; def t0; ret
        let cfg = cfg_for(|r| {
            r.use_reg(Reg::A0).def(Reg::T0).ret();
        });
        let l = solve_whole(&cfg);
        assert!(l.may_use.contains(Reg::A0));
        assert!(l.may_use.contains(Reg::RA)); // ret reads ra
        assert!(!l.may_use.contains(Reg::T0));
        assert_eq!(l.may_def, RegSet::of(&[Reg::T0]));
        assert_eq!(l.must_def, RegSet::of(&[Reg::T0]));
    }

    #[test]
    fn diamond_must_def_is_intersection() {
        // if: def t0, def t1 / else: def t0; join: ret
        let cfg = cfg_for(|r| {
            r.cond(BranchCond::Eq, Reg::A0, "else")
                .def(Reg::T0)
                .def(Reg::T1)
                .br("join")
                .label("else")
                .def(Reg::T0)
                .label("join")
                .ret();
        });
        let l = solve_whole(&cfg);
        assert!(l.must_def.contains(Reg::T0));
        assert!(!l.must_def.contains(Reg::T1));
        assert!(l.may_def.contains(Reg::T1));
        assert!(l.may_use.contains(Reg::A0));
    }

    #[test]
    fn def_kills_downstream_use() {
        // def a0; use a0; ret — a0 not in MAY-USE.
        let cfg = cfg_for(|r| {
            r.def(Reg::A0).use_reg(Reg::A0).ret();
        });
        let l = solve_whole(&cfg);
        assert!(!l.may_use.contains(Reg::A0));
        assert!(l.must_def.contains(Reg::A0));
    }

    #[test]
    fn loop_defs_are_may_not_must() {
        // while (a0) { def t0 }; ret  — t0 may be defined but not must.
        let cfg = cfg_for(|r| {
            r.label("head")
                .cond(BranchCond::Eq, Reg::A0, "done")
                .def(Reg::T0)
                .br("head")
                .label("done")
                .ret();
        });
        let l = solve_whole(&cfg);
        assert!(l.may_def.contains(Reg::T0));
        assert!(!l.must_def.contains(Reg::T0));
        // The loop's condition register is used before any def.
        assert!(l.may_use.contains(Reg::A0));
    }

    #[test]
    fn loop_body_defs_on_every_path_are_must() {
        // do { def t0 } while (a0); ret — t0 defined on every path.
        let cfg = cfg_for(|r| {
            r.label("head").def(Reg::T0).cond(BranchCond::Ne, Reg::A0, "head").ret();
        });
        let l = solve_whole(&cfg);
        assert!(l.must_def.contains(Reg::T0), "loop body runs at least once");
    }

    #[test]
    fn use_after_loop_def_not_in_may_use() {
        // t0 defined on every path through the loop body before its use.
        let cfg = cfg_for(|r| {
            r.def(Reg::T0)
                .label("head")
                .use_reg(Reg::T0)
                .cond(BranchCond::Ne, Reg::A0, "head")
                .ret();
        });
        let l = solve_whole(&cfg);
        assert!(!l.may_use.contains(Reg::T0));
        assert!(l.must_def.contains(Reg::T0));
    }

    #[test]
    fn scratch_reuse_is_clean_across_calls() {
        // Two very different routines solved with the same scratch must
        // produce the same labels as fresh scratch.
        let cfg1 = cfg_for(|r| {
            r.def(Reg::T0).use_reg(Reg::A1).ret();
        });
        let cfg2 = cfg_for(|r| {
            r.cond(BranchCond::Eq, Reg::A0, "e").def(Reg::T1).label("e").def(Reg::T2).ret();
        });
        let mut scratch = FlowScratch::new();
        let mut sub1 = BlockSet::new(cfg1.blocks().len());
        for i in 0..cfg1.blocks().len() {
            sub1.insert(BlockId::from_index(i));
        }
        let mut sub2 = BlockSet::new(cfg2.blocks().len());
        for i in 0..cfg2.blocks().len() {
            sub2.insert(BlockId::from_index(i));
        }
        let a1 = solve_edge(&cfg1, &sub1, cfg1.exits()[0], &[BlockId::from_index(0)], &mut scratch);
        let a2 = solve_edge(&cfg2, &sub2, cfg2.exits()[0], &[BlockId::from_index(0)], &mut scratch);
        assert_eq!(a1, solve_whole(&cfg1));
        assert_eq!(a2, solve_whole(&cfg2));
    }

    /// Path-enumeration oracle: on an acyclic subgraph, MAY-USE/MAY-DEF/
    /// MUST-DEF must equal the union/union/intersection over all explicit
    /// paths of the per-path backward composition.
    #[test]
    fn matches_path_enumeration_oracle_on_acyclic_graph() {
        // Two nested diamonds with distinct defs/uses per arm.
        let cfg = cfg_for(|r| {
            r.cond(BranchCond::Eq, Reg::A0, "d1else")
                .def(Reg::T0)
                .use_reg(Reg::A1)
                .br("mid")
                .label("d1else")
                .def(Reg::T1)
                .label("mid")
                .cond(BranchCond::Ne, Reg::A2, "d2else")
                .def(Reg::T2)
                .br("end")
                .label("d2else")
                .def(Reg::T0)
                .use_reg(Reg::T0)
                .label("end")
                .def(Reg::T3)
                .ret();
        });
        let solved = solve_whole(&cfg);

        // Enumerate all block paths from block 0 to the exit.
        let target = cfg.exits()[0];
        let mut paths: Vec<Vec<BlockId>> = Vec::new();
        let mut stack = vec![(vec![BlockId::from_index(0)])];
        while let Some(path) = stack.pop() {
            let last = *path.last().unwrap();
            if last == target {
                paths.push(path);
                continue;
            }
            for &s in cfg.block(last).succs() {
                let mut p = path.clone();
                p.push(s);
                stack.push(p);
            }
        }
        assert!(paths.len() >= 4, "expected all 4 diamond paths");

        let mut oracle_may_use = RegSet::EMPTY;
        let mut oracle_may_def = RegSet::EMPTY;
        let mut oracle_must_def = RegSet::ALL;
        for path in &paths {
            let mut used = RegSet::EMPTY;
            let mut defined = RegSet::EMPTY;
            for &b in path {
                let blk = cfg.block(b);
                used |= blk.ubd() - defined;
                defined |= blk.def();
            }
            oracle_may_use |= used;
            oracle_may_def |= defined;
            oracle_must_def &= defined;
        }
        assert_eq!(solved.may_use, oracle_may_use);
        assert_eq!(solved.may_def, oracle_may_def);
        assert_eq!(solved.must_def, oracle_must_def);
    }
}
