//! The Program Summary Graph data structure (§3.1 of the paper).

use std::fmt;

use spike_cfg::BlockId;
use spike_isa::{CloneExact, HeapSize, RegSet};
use spike_program::RoutineId;

/// Identifies a PSG node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an id from a dense index.
    #[inline]
    pub const fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }

    /// The dense index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl HeapSize for NodeId {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Identifies a PSG edge.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an id from a dense index.
    #[inline]
    pub const fn from_index(index: usize) -> EdgeId {
        EdgeId(index as u32)
    }

    /// The dense index of this edge.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl HeapSize for EdgeId {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// What a PSG node represents: a program location for which dataflow
/// information is collected.
///
/// The paper's four node types (§3.1) plus the branch nodes of §3.6 and
/// two sink kinds this reproduction adds for program termination and
/// unrecoverable indirect jumps (§3.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// An entrance to a routine; `index` selects among the routine's
    /// entrances.
    Entry { routine: RoutineId, index: usize },
    /// An exit (`ret`) from a routine; `index` selects among the routine's
    /// exits in address order.
    Exit { routine: RoutineId, index: usize },
    /// The call instruction ending `block`.
    Call { routine: RoutineId, block: BlockId },
    /// The return point of the call ending `block` (the call's
    /// fall-through address).
    Return { routine: RoutineId, block: BlockId },
    /// A multiway branch (§3.6) ending `block`; inserted to turn the
    /// O(n²) edges around an n-way branch into O(n).
    Branch { routine: RoutineId, block: BlockId },
    /// A `halt` ending `block`: program termination. Nothing is live or
    /// defined afterwards.
    Halt { routine: RoutineId, block: BlockId },
    /// An indirect jump with no recovered table ending `block`; all
    /// registers are assumed live at its unknown target (§3.5).
    UnknownJump { routine: RoutineId, block: BlockId },
    /// Sink for control-flow regions that can reach no summary point
    /// (infinite loops). Edges into it conservatively carry every register
    /// the diverging region may read, so those uses are never lost.
    Diverge { routine: RoutineId },
}

impl NodeKind {
    /// The routine the node belongs to.
    pub fn routine(&self) -> RoutineId {
        match *self {
            NodeKind::Entry { routine, .. }
            | NodeKind::Exit { routine, .. }
            | NodeKind::Call { routine, .. }
            | NodeKind::Return { routine, .. }
            | NodeKind::Branch { routine, .. }
            | NodeKind::Halt { routine, .. }
            | NodeKind::UnknownJump { routine, .. }
            | NodeKind::Diverge { routine } => routine,
        }
    }
}

impl HeapSize for NodeKind {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Whether an edge summarizes intraprocedural control flow or a call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// Summarizes all control-flow paths between two locations in the same
    /// routine; labeled with `MAY-USE`/`MAY-DEF`/`MUST-DEF` computed over
    /// the paths' CFG subgraph (Figure 6).
    FlowSummary,
    /// Connects a call node to its return node; summarizes everything that
    /// may happen during the call. Filled in by phase 1 from the callee's
    /// entry node (or fixed calling-standard sets for unknown callees).
    CallReturn,
}

/// A PSG edge with its register-summary labels.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) kind: EdgeKind,
    pub(crate) may_use: RegSet,
    pub(crate) may_def: RegSet,
    pub(crate) must_def: RegSet,
}

impl Edge {
    /// Source node.
    #[inline]
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// Destination node.
    #[inline]
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// Flow-summary or call-return.
    #[inline]
    pub fn kind(&self) -> EdgeKind {
        self.kind
    }

    /// Registers used before defined along some summarized path.
    #[inline]
    pub fn may_use(&self) -> RegSet {
        self.may_use
    }

    /// Registers defined along some summarized path.
    #[inline]
    pub fn may_def(&self) -> RegSet {
        self.may_def
    }

    /// Registers defined along every summarized path.
    #[inline]
    pub fn must_def(&self) -> RegSet {
        self.must_def
    }
}

impl HeapSize for Edge {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Per-routine node directory.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RoutineNodes {
    /// Entry node per entrance.
    pub(crate) entries: Vec<NodeId>,
    /// Exit node per `ret` block, in address order.
    pub(crate) exits: Vec<NodeId>,
    /// `(call block, call node, return node)` per call site, address order.
    pub(crate) calls: Vec<(BlockId, NodeId, NodeId)>,
    /// `(multiway block, branch node)` per branch node inserted.
    pub(crate) branches: Vec<(BlockId, NodeId)>,
    /// Halt sink nodes.
    pub(crate) halts: Vec<NodeId>,
    /// Unknown-jump sink nodes.
    pub(crate) unknown_jumps: Vec<NodeId>,
    /// Sink for regions that reach no summary point, if the routine has
    /// any.
    pub(crate) diverge: Option<NodeId>,
    /// Callee-saved registers this routine saves and restores (§3.4).
    pub(crate) saved_restored: RegSet,
}

impl RoutineNodes {
    /// Entry node per entrance.
    pub fn entries(&self) -> &[NodeId] {
        &self.entries
    }

    /// Exit node per `ret` block, in address order.
    pub fn exits(&self) -> &[NodeId] {
        &self.exits
    }

    /// `(call block, call node, return node)` per call site.
    pub fn calls(&self) -> &[(BlockId, NodeId, NodeId)] {
        &self.calls
    }

    /// `(multiway block, branch node)` per inserted branch node.
    pub fn branches(&self) -> &[(BlockId, NodeId)] {
        &self.branches
    }

    /// Callee-saved registers this routine saves and restores.
    pub fn saved_restored(&self) -> RegSet {
        self.saved_restored
    }
}

impl HeapSize for RoutineNodes {
    fn heap_bytes(&self) -> usize {
        self.entries.heap_bytes()
            + self.exits.heap_bytes()
            + self.calls.capacity() * std::mem::size_of::<(BlockId, NodeId, NodeId)>()
            + self.branches.capacity() * std::mem::size_of::<(BlockId, NodeId)>()
            + self.halts.heap_bytes()
            + self.unknown_jumps.heap_bytes()
    }
}

impl CloneExact for RoutineNodes {
    fn clone_exact(&self) -> RoutineNodes {
        RoutineNodes {
            entries: self.entries.clone_exact(),
            exits: self.exits.clone_exact(),
            calls: self.calls.clone_exact(),
            branches: self.branches.clone_exact(),
            halts: self.halts.clone_exact(),
            unknown_jumps: self.unknown_jumps.clone_exact(),
            diverge: self.diverge,
            saved_restored: self.saved_restored,
        }
    }
}

/// Aggregate PSG size statistics (Tables 3–5 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PsgStats {
    /// Total nodes.
    pub nodes: usize,
    /// Total edges (flow-summary + call-return).
    pub edges: usize,
    /// Flow-summary edges only.
    pub flow_edges: usize,
    /// Call-return edges only.
    pub call_return_edges: usize,
    /// Entry nodes.
    pub entry_nodes: usize,
    /// Exit nodes.
    pub exit_nodes: usize,
    /// Call nodes (== return nodes).
    pub call_nodes: usize,
    /// Branch nodes inserted for multiway branches.
    pub branch_nodes: usize,
}

/// The Program Summary Graph: a compact representation of a program's
/// intraprocedural and interprocedural control flow (§3.1).
///
/// Nodes mark the program locations dataflow is collected for; each node
/// carries `MAY-USE`/`MAY-DEF`/`MUST-DEF` sets (filled by phase 1) and a
/// phase-2 liveness set. Edges summarize the register definitions and uses
/// occurring on the control-flow paths they represent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Psg {
    pub(crate) nodes: Vec<NodeKind>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) out_edges: Vec<Vec<EdgeId>>,
    pub(crate) in_edges: Vec<Vec<EdgeId>>,
    pub(crate) routines: Vec<RoutineNodes>,
    /// Per call-return edge: the callee entry nodes whose phase-1 values
    /// feed it (empty for flow edges and unknown-target calls).
    pub(crate) cr_sources: Vec<Vec<NodeId>>,
    /// Per node: the call-return edges fed by this (entry) node.
    pub(crate) entry_cr_edges: Vec<Vec<EdgeId>>,
    /// Per node: the callee exit nodes a (return) node broadcasts phase-2
    /// liveness to.
    pub(crate) return_exit_targets: Vec<Vec<NodeId>>,
    /// Nodes whose dataflow values are fixed (unknown-jump, halt sinks).
    pub(crate) pinned: Vec<bool>,
    /// Per node: the liveness pinned at an unknown-jump sink — every
    /// register by default, or the compiler-provided hint (§3.5
    /// extension). Meaningful only for [`NodeKind::UnknownJump`] nodes.
    pub(crate) uj_live: Vec<RegSet>,
    // Phase-1 node values.
    pub(crate) may_use: Vec<RegSet>,
    pub(crate) may_def: Vec<RegSet>,
    pub(crate) must_def: Vec<RegSet>,
    // Phase-2 node values (registers live at the node's location).
    pub(crate) live: Vec<RegSet>,
}

impl Psg {
    /// Node kinds, indexed by [`NodeId`].
    #[inline]
    pub fn nodes(&self) -> &[NodeKind] {
        &self.nodes
    }

    /// All edges, indexed by [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The kind of `n`.
    #[inline]
    pub fn node(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()]
    }

    /// The edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Outgoing edges of `n`.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out_edges[n.index()]
    }

    /// Incoming edges of `n`.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.in_edges[n.index()]
    }

    /// The node directory for `routine`.
    #[inline]
    pub fn routine_nodes(&self, routine: RoutineId) -> &RoutineNodes {
        &self.routines[routine.index()]
    }

    /// Node directories for every routine, indexed by routine id.
    #[inline]
    pub fn all_routine_nodes(&self) -> &[RoutineNodes] {
        &self.routines
    }

    /// Phase-1 `MAY-USE` of `n` (after convergence: the registers that may
    /// be used before definition downstream of the location, within the
    /// routine's dynamic extent).
    #[inline]
    pub fn may_use(&self, n: NodeId) -> RegSet {
        self.may_use[n.index()]
    }

    /// Phase-1 `MAY-DEF` of `n`.
    #[inline]
    pub fn may_def(&self, n: NodeId) -> RegSet {
        self.may_def[n.index()]
    }

    /// Phase-1 `MUST-DEF` of `n`.
    #[inline]
    pub fn must_def(&self, n: NodeId) -> RegSet {
        self.must_def[n.index()]
    }

    /// Phase-2 liveness at `n` (the registers that may be used along some
    /// valid continuation of execution from the node's location).
    #[inline]
    pub fn live(&self, n: NodeId) -> RegSet {
        self.live[n.index()]
    }

    /// Partitions the nodes by the call-graph component of their owning
    /// routine. Returns `(per-component node lists, per-node component)`;
    /// each component's list is ascending in node id. The partition is
    /// scratch for the scheduled solver — it is *not* stored on the PSG,
    /// so [`HeapSize`] accounting (and with it `memory_bytes`) is
    /// unaffected by which scheduler ran.
    pub(crate) fn partition_by_component(
        &self,
        sccs: &spike_callgraph::Sccs,
    ) -> (Vec<Vec<NodeId>>, Vec<u32>) {
        let n_comps = sccs.components().len();
        let mut comp_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); n_comps];
        let mut comp_of = Vec::with_capacity(self.nodes.len());
        for (i, kind) in self.nodes.iter().enumerate() {
            let c = sccs.component_of(kind.routine());
            comp_of.push(c as u32);
            comp_nodes[c].push(NodeId::from_index(i));
        }
        (comp_nodes, comp_of)
    }

    /// Aggregate size statistics (Tables 3–5).
    pub fn stats(&self) -> PsgStats {
        let mut s =
            PsgStats { nodes: self.nodes.len(), edges: self.edges.len(), ..PsgStats::default() };
        for e in &self.edges {
            match e.kind {
                EdgeKind::FlowSummary => s.flow_edges += 1,
                EdgeKind::CallReturn => s.call_return_edges += 1,
            }
        }
        for n in &self.nodes {
            match n {
                NodeKind::Entry { .. } => s.entry_nodes += 1,
                NodeKind::Exit { .. } => s.exit_nodes += 1,
                NodeKind::Call { .. } => s.call_nodes += 1,
                NodeKind::Branch { .. } => s.branch_nodes += 1,
                _ => {}
            }
        }
        s
    }
}

impl HeapSize for Psg {
    fn heap_bytes(&self) -> usize {
        self.nodes.heap_bytes()
            + self.edges.heap_bytes()
            + self.out_edges.heap_bytes()
            + self.in_edges.heap_bytes()
            + self.routines.heap_bytes()
            + self.cr_sources.heap_bytes()
            + self.entry_cr_edges.heap_bytes()
            + self.return_exit_targets.heap_bytes()
            + self.pinned.heap_bytes()
            + self.uj_live.heap_bytes()
            + self.may_use.heap_bytes()
            + self.may_def.heap_bytes()
            + self.must_def.heap_bytes()
            + self.live.heap_bytes()
    }
}

impl CloneExact for Psg {
    fn clone_exact(&self) -> Psg {
        Psg {
            nodes: self.nodes.clone_exact(),
            edges: self.edges.clone_exact(),
            out_edges: self.out_edges.clone_exact(),
            in_edges: self.in_edges.clone_exact(),
            routines: self.routines.clone_exact(),
            cr_sources: self.cr_sources.clone_exact(),
            entry_cr_edges: self.entry_cr_edges.clone_exact(),
            return_exit_targets: self.return_exit_targets.clone_exact(),
            pinned: self.pinned.clone_exact(),
            uj_live: self.uj_live.clone_exact(),
            may_use: self.may_use.clone_exact(),
            may_def: self.may_def.clone_exact(),
            must_def: self.must_def.clone_exact(),
            live: self.live.clone_exact(),
        }
    }
}

spike_isa::impl_clone_exact_for_copy!(NodeId, EdgeId, NodeKind, EdgeKind);

impl CloneExact for Edge {
    fn clone_exact(&self) -> Edge {
        self.clone()
    }
}
