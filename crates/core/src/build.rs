//! Program Summary Graph construction (§3.1, §3.5, §3.6).

use spike_cfg::{BlockId, BlockSet, CallTarget, ProgramCfg, RoutineCfg, TermKind};
use spike_isa::RegSet;
use spike_program::{Program, RoutineId};

use crate::analysis::AnalysisOptions;
use crate::callee_saved::saved_restored_registers;
use crate::flow::{solve_edge, FlowScratch};
use crate::parallel::{par_map, par_map_with};
use crate::psg::{Edge, EdgeId, EdgeKind, NodeId, NodeKind, Psg, RoutineNodes};

/// Builds the PSG for `program`: one set of entry/exit/call/return (and
/// optionally branch) nodes per routine, flow-summary edges labeled by the
/// Figure-6 subgraph dataflow, and call-return edges wired to their callee
/// entry nodes for the phase-1 broadcast.
///
/// The expensive per-routine work — the §3.4 callee-saved scan in pass 1
/// and the Figure-6 edge labeling in pass 2 — fans out over `workers`
/// scoped threads; results merge back in routine-id order, so node ids,
/// edge ids, and every vector's growth sequence (hence the deterministic
/// [`HeapSize`](spike_isa::HeapSize) accounting) are identical at any
/// worker count.
pub(crate) fn build_psg(
    program: &Program,
    pcfg: &ProgramCfg,
    options: &AnalysisOptions,
    workers: usize,
) -> Psg {
    let mut psg = Psg {
        nodes: Vec::new(),
        edges: Vec::new(),
        out_edges: Vec::new(),
        in_edges: Vec::new(),
        routines: Vec::with_capacity(pcfg.cfgs().len()),
        cr_sources: Vec::new(),
        entry_cr_edges: Vec::new(),
        return_exit_targets: Vec::new(),
        pinned: Vec::new(),
        uj_live: Vec::new(),
        may_use: Vec::new(),
        may_def: Vec::new(),
        must_def: Vec::new(),
        live: Vec::new(),
    };

    // Pass 1: create every node, so cross-routine references (call-return
    // sources, return-to-exit broadcasts) can be resolved in pass 2. The
    // node pushes are cheap and id-sequential, so they stay serial; the
    // dominant cost — the §3.4 saved/restored scan over every routine
    // body — runs per routine in parallel first.
    let saved_restored: Vec<RegSet> = par_map(pcfg.cfgs().len(), workers, |i| {
        if options.callee_saved_filter {
            saved_restored_registers(program, &pcfg.cfgs()[i], &options.calling_standard)
        } else {
            RegSet::EMPTY
        }
    });

    for cfg in pcfg.cfgs() {
        let rid = cfg.routine();
        let mut rn = RoutineNodes::default();
        for planned in plan_routine_nodes(program, cfg, options) {
            let n = push_node(&mut psg, planned.kind);
            psg.pinned[n.index()] = planned.pinned;
            psg.uj_live[n.index()] = planned.uj_live;
            register_node(&mut rn, planned.kind, n);
        }
        rn.saved_restored = saved_restored[rid.index()];
        psg.routines.push(rn);
    }

    // Pass 2: per routine, chop the CFG at summary points and label
    // flow-summary and call-return edges. Planning each routine's edges
    // reads only the immutable pass-1 node tables, so it fans out across
    // workers (each with its own flow-solver scratch); the plans are then
    // applied serially in routine-id order, replaying the exact push
    // sequence the serial builder would perform.
    let plans: Vec<RoutineEdgePlan> =
        par_map_with(pcfg.cfgs().len(), workers, FlowScratch::new, |scratch, i| {
            plan_routine_edges(&psg, &pcfg.cfgs()[i], options, scratch)
        });
    for (cfg, plan) in pcfg.cfgs().iter().zip(plans) {
        apply_routine_plan(&mut psg, cfg.routine(), plan);
    }

    // Finalize adjacency and value arrays.
    let n = psg.nodes.len();
    psg.in_edges = vec![Vec::new(); n];
    for (ei, e) in psg.edges.iter().enumerate() {
        psg.in_edges[e.to().index()].push(EdgeId::from_index(ei));
    }
    psg.may_use = vec![RegSet::EMPTY; n];
    psg.may_def = vec![RegSet::EMPTY; n];
    psg.must_def = vec![RegSet::EMPTY; n];
    psg.live = vec![RegSet::EMPTY; n];
    psg
}

/// One pass-1 node a routine will contribute, in creation order.
///
/// Node *planning* is pure — it reads only the routine's CFG and the
/// program's hint tables — so incremental re-analysis can re-plan a dirty
/// routine's nodes and compare them against the cached directory without
/// touching the PSG.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct PlannedNode {
    pub(crate) kind: NodeKind,
    pub(crate) pinned: bool,
    pub(crate) uj_live: RegSet,
}

/// Plans one routine's pass-1 nodes: entries, exits, call/return pairs,
/// optional branch nodes, and the halt / unknown-jump sinks, in the exact
/// order `build_psg` creates them. (Diverge sinks are not planned here;
/// they are created while applying the routine's *edge* plan.)
pub(crate) fn plan_routine_nodes(
    program: &Program,
    cfg: &RoutineCfg,
    options: &AnalysisOptions,
) -> Vec<PlannedNode> {
    let rid = cfg.routine();
    let flow = |kind| PlannedNode { kind, pinned: false, uj_live: RegSet::ALL };
    let mut plan = Vec::new();

    for (i, _) in cfg.entries().iter().enumerate() {
        plan.push(flow(NodeKind::Entry { routine: rid, index: i }));
    }
    for (i, _) in cfg.exits().iter().enumerate() {
        plan.push(flow(NodeKind::Exit { routine: rid, index: i }));
    }
    for block in cfg.call_blocks() {
        plan.push(flow(NodeKind::Call { routine: rid, block }));
        plan.push(flow(NodeKind::Return { routine: rid, block }));
    }
    if options.branch_nodes {
        for (bi, b) in cfg.blocks().iter().enumerate() {
            if matches!(b.term(), TermKind::MultiwayJump) {
                let block = BlockId::from_index(bi);
                plan.push(flow(NodeKind::Branch { routine: rid, block }));
            }
        }
    }
    for &block in cfg.halts() {
        plan.push(PlannedNode {
            kind: NodeKind::Halt { routine: rid, block },
            pinned: true,
            uj_live: RegSet::ALL,
        });
    }
    for &block in cfg.unknown_jumps() {
        // §3.5 extension: a compiler-provided hint replaces the
        // all-registers-live assumption at the unknown target.
        let uj_live = program.jump_hint(cfg.block(block).term_addr()).unwrap_or(RegSet::ALL);
        plan.push(PlannedNode {
            kind: NodeKind::UnknownJump { routine: rid, block },
            pinned: true,
            uj_live,
        });
    }
    plan
}

/// Files a freshly created pass-1 node under the right directory list.
/// Calls and returns are planned as adjacent pairs, so a `Return` closes
/// the `(block, call, ret)` triple its `Call` opened.
pub(crate) fn register_node(rn: &mut RoutineNodes, kind: NodeKind, id: NodeId) {
    match kind {
        NodeKind::Entry { .. } => rn.entries.push(id),
        NodeKind::Exit { .. } => rn.exits.push(id),
        NodeKind::Call { block, .. } => rn.calls.push((block, id, id)),
        NodeKind::Return { .. } => {
            rn.calls.last_mut().expect("return follows its call").2 = id;
        }
        NodeKind::Branch { block, .. } => rn.branches.push((block, id)),
        NodeKind::Halt { .. } => rn.halts.push(id),
        NodeKind::UnknownJump { .. } => rn.unknown_jumps.push(id),
        NodeKind::Diverge { .. } => unreachable!("diverge nodes are not planned in pass 1"),
    }
}

fn push_node(psg: &mut Psg, kind: NodeKind) -> NodeId {
    let id = NodeId::from_index(psg.nodes.len());
    psg.nodes.push(kind);
    psg.out_edges.push(Vec::new());
    psg.entry_cr_edges.push(Vec::new());
    psg.return_exit_targets.push(Vec::new());
    psg.pinned.push(false);
    psg.uj_live.push(RegSet::ALL);
    id
}

fn push_edge(psg: &mut Psg, edge: Edge) -> EdgeId {
    let id = EdgeId::from_index(psg.edges.len());
    psg.out_edges[edge.from().index()].push(id);
    psg.edges.push(edge);
    psg.cr_sources.push(Vec::new());
    id
}

/// A summary point terminating paths at the end of a block.
fn terminal_node(
    psg: &Psg,
    cfg: &RoutineCfg,
    options: &AnalysisOptions,
    block: BlockId,
) -> Option<NodeId> {
    let rid = cfg.routine();
    let rn = &psg.routines[rid.index()];
    match cfg.block(block).term() {
        TermKind::Call { .. } => {
            rn.calls.iter().find(|(b, _, _)| *b == block).map(|&(_, call, _)| call)
        }
        TermKind::Ret => cfg.exits().iter().position(|&b| b == block).map(|i| rn.exits[i]),
        TermKind::Halt => cfg.halts().iter().position(|&b| b == block).map(|i| rn.halts[i]),
        TermKind::UnknownJump => {
            cfg.unknown_jumps().iter().position(|&b| b == block).map(|i| rn.unknown_jumps[i])
        }
        TermKind::MultiwayJump if options.branch_nodes => {
            rn.branches.iter().find(|(b, _)| *b == block).map(|&(_, n)| n)
        }
        _ => None,
    }
}

/// One edge a routine's plan will create, in creation order.
///
/// `edge.to` is a placeholder (the edge's own source) when `to_diverge`
/// is set: the routine's diverge sink does not exist until the plan is
/// applied, because diverge node ids depend on which *earlier* routines
/// needed one.
pub(crate) struct PlannedEdge {
    pub(crate) edge: Edge,
    pub(crate) to_diverge: bool,
    /// Call-return wiring: the callee entry nodes broadcasting to this
    /// edge and the callee exit nodes its return node listens to.
    pub(crate) cr: Option<(Vec<NodeId>, Vec<NodeId>)>,
}

/// Everything pass 2 computes for one routine, ready to replay into the
/// PSG in routine-id order.
pub(crate) struct RoutineEdgePlan {
    pub(crate) edges: Vec<PlannedEdge>,
    pub(crate) needs_diverge: bool,
}

/// Plans one routine's flow-summary and call-return edges against the
/// immutable pass-1 node tables. Pure with respect to `psg`, so any
/// number of routines can be planned concurrently.
pub(crate) fn plan_routine_edges(
    psg: &Psg,
    cfg: &RoutineCfg,
    options: &AnalysisOptions,
    scratch: &mut FlowScratch,
) -> RoutineEdgePlan {
    let rid = cfg.routine();
    let nblocks = cfg.blocks().len();
    let mut plan = RoutineEdgePlan { edges: Vec::new(), needs_diverge: false };

    // Block -> terminal summary node at its end, if any.
    let terminals: Vec<Option<NodeId>> =
        (0..nblocks).map(|i| terminal_node(psg, cfg, options, BlockId::from_index(i))).collect();

    // Backward reachability to each terminal block: the blocks from which
    // the terminal can be reached without crossing another summary point.
    // `reaches_term` is their union; blocks outside it sit in regions that
    // can reach no summary point (infinite loops) and are summarized by a
    // conservative edge to the routine's diverge sink.
    let mut bwd: Vec<Option<BlockSet>> = vec![None; nblocks];
    let mut reaches_term = BlockSet::new(nblocks);
    for ti in 0..nblocks {
        if terminals[ti].is_none() {
            continue;
        }
        let t = BlockId::from_index(ti);
        let mut set = BlockSet::new(nblocks);
        set.insert(t);
        let mut stack = vec![t];
        while let Some(b) = stack.pop() {
            for &p in cfg.block(b).preds() {
                // Paths may not flow *through* another summary point; a
                // predecessor ending at a summary point cannot be interior.
                if terminals[p.index()].is_none() && set.insert(p) {
                    stack.push(p);
                }
            }
        }
        for b in set.iter() {
            reaches_term.insert(b);
        }
        bwd[ti] = Some(set);
    }

    // Source points and the blocks their paths start at.
    let rn = &psg.routines[rid.index()];
    let mut sources: Vec<(NodeId, Vec<BlockId>)> = Vec::new();
    for (i, &node) in rn.entries.iter().enumerate() {
        sources.push((node, vec![cfg.entries()[i]]));
    }
    for &(block, _, ret_node) in &rn.calls {
        if let TermKind::Call { return_to: Some(rt), .. } = cfg.block(block).term() {
            sources.push((ret_node, vec![*rt]));
        }
    }
    for &(block, branch_node) in &rn.branches {
        sources.push((branch_node, cfg.block(block).succs().to_vec()));
    }

    for (source, starts) in sources {
        // Forward traversal from the start blocks, cut at summary points.
        let mut visited = BlockSet::new(nblocks);
        let mut reached: Vec<BlockId> = Vec::new();
        let mut stack: Vec<BlockId> = Vec::new();
        for &s in &starts {
            if visited.insert(s) {
                stack.push(s);
            }
        }
        while let Some(b) = stack.pop() {
            if terminals[b.index()].is_some() {
                reached.push(b);
                continue; // paths end at the summary point
            }
            for &s in cfg.block(b).succs() {
                if visited.insert(s) {
                    stack.push(s);
                }
            }
        }
        reached.sort_unstable();

        for &t in &reached {
            let subgraph =
                visited.intersection(bwd[t.index()].as_ref().expect("terminal has bwd set"));
            let label = solve_edge(cfg, &subgraph, t, &starts, scratch);
            let to = terminals[t.index()].expect("reached block has a terminal");
            plan.edges.push(PlannedEdge {
                edge: Edge {
                    from: source,
                    to,
                    kind: EdgeKind::FlowSummary,
                    may_use: label.may_use,
                    may_def: label.may_def,
                    must_def: label.must_def,
                },
                to_diverge: false,
                cr: None,
            });
        }

        // Regions reachable from this source that can reach no summary
        // point (infinite loops): summarize their register reads with a
        // conservative edge to the routine's diverge sink, so the uses on
        // never-terminating paths are not lost.
        let stranded: Vec<BlockId> =
            visited.iter().filter(|b| !reaches_term.contains(*b)).collect();
        if !stranded.is_empty() {
            plan.needs_diverge = true;
            let mut may_use = RegSet::EMPTY;
            let mut may_def = RegSet::EMPTY;
            for b in stranded {
                may_use |= cfg.block(b).ubd();
                may_def |= cfg.block(b).def();
            }
            plan.edges.push(PlannedEdge {
                edge: Edge {
                    from: source,
                    to: source, // placeholder; resolved when the plan is applied
                    kind: EdgeKind::FlowSummary,
                    may_use,
                    may_def,
                    must_def: RegSet::EMPTY,
                },
                to_diverge: true,
                cr: None,
            });
        }
    }

    // Call-return edges (§3.1): initially empty for known callees (filled
    // by the phase-1 broadcast), fixed calling-standard assumptions for
    // unknown callees (§3.5).
    for &(block, call_node, ret_node) in &rn.calls {
        let TermKind::Call { target, .. } = cfg.block(block).term() else {
            unreachable!("call list contains only call blocks");
        };

        let (label, entry_sources, exit_targets) = match target {
            // Known-target labels are filled by the phase-1 broadcast.
            // MUST-DEF iterates downward from ⊤, so it starts at ALL.
            CallTarget::Direct(callee, entry) => {
                let callee_nodes = &psg.routines[callee.index()];
                (
                    (RegSet::EMPTY, RegSet::EMPTY, RegSet::ALL),
                    vec![callee_nodes.entries[*entry]],
                    callee_nodes.exits.clone(),
                )
            }
            CallTarget::IndirectKnown(list) => {
                let mut entries = Vec::with_capacity(list.len());
                let mut exits = Vec::new();
                for &(callee, entry) in list {
                    let callee_nodes = &psg.routines[callee.index()];
                    entries.push(callee_nodes.entries[entry]);
                    exits.extend_from_slice(&callee_nodes.exits);
                }
                ((RegSet::EMPTY, RegSet::EMPTY, RegSet::ALL), entries, exits)
            }
            CallTarget::IndirectUnknown => {
                let std = &options.calling_standard;
                (
                    (
                        std.unknown_call_used(),
                        std.unknown_call_killed(),
                        std.unknown_call_defined(),
                    ),
                    Vec::new(),
                    Vec::new(),
                )
            }
            // §3.5 extension: exact effects supplied by the compiler take
            // the place of the calling-standard assumptions.
            CallTarget::IndirectHinted { used, defined, killed } => {
                ((*used, *killed, *defined), Vec::new(), Vec::new())
            }
        };

        plan.edges.push(PlannedEdge {
            edge: Edge {
                from: call_node,
                to: ret_node,
                kind: EdgeKind::CallReturn,
                may_use: label.0,
                may_def: label.1,
                must_def: label.2,
            },
            to_diverge: false,
            cr: Some((entry_sources, exit_targets)),
        });
    }

    plan
}

/// Replays one routine's plan into the PSG. Called in routine-id order;
/// together with the deterministic plan contents this makes every push —
/// node, edge, adjacency, call-return wiring — happen in exactly the
/// order a fully serial pass 2 would produce.
fn apply_routine_plan(psg: &mut Psg, rid: RoutineId, plan: RoutineEdgePlan) {
    let diverge = plan.needs_diverge.then(|| {
        let d = push_node(psg, NodeKind::Diverge { routine: rid });
        psg.pinned[d.index()] = true;
        psg.routines[rid.index()].diverge = Some(d);
        d
    });

    for planned in plan.edges {
        let mut edge = planned.edge;
        if planned.to_diverge {
            edge.to = diverge.expect("plan with a diverge edge flags needs_diverge");
        }
        let to = edge.to;
        let eid = push_edge(psg, edge);
        if let Some((entry_sources, exit_targets)) = planned.cr {
            for &entry in &entry_sources {
                psg.entry_cr_edges[entry.index()].push(eid);
            }
            psg.cr_sources[eid.index()] = entry_sources;
            psg.return_exit_targets[to.index()] = exit_targets;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisOptions;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    fn build(b: &ProgramBuilder, options: &AnalysisOptions) -> (Program, ProgramCfg, Psg) {
        let p = b.build().unwrap();
        let pcfg = ProgramCfg::build(&p);
        let psg = build_psg(&p, &pcfg, options, 1);
        (p, pcfg, psg)
    }

    /// The paper's Figure 4: entry, one call, one exit, a diamond around
    /// the call. Nodes: entry, exit, call, return. Edges: E_A
    /// (entry→exit), E_B (entry→call), E_C (return→exit), E_CR.
    fn figure4_builder() -> ProgramBuilder {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            // Block 1: use R1 (a0), branch.
            .use_reg(Reg::A0)
            .cond(spike_isa::BranchCond::Eq, Reg::A0, "b3")
            // Block 2: def R2 (t0), def R3 (t1).
            .def(Reg::T0)
            .def(Reg::T1)
            .br("b4")
            // Block 3: def R2 (t0), call.
            .label("b3")
            .def(Reg::T0)
            .call("callee")
            // Block 4: def R3 (t1), exit.
            .label("b4")
            .def(Reg::T1)
            .ret();
        b.routine("callee").def(Reg::V0).ret();
        b
    }

    #[test]
    fn figure4_node_and_edge_shape() {
        let b = figure4_builder();
        let (p, _, psg) = build(&b, &AnalysisOptions::default());
        let main = p.routine_by_name("main").unwrap();
        let rn = psg.routine_nodes(main);
        assert_eq!(rn.entries().len(), 1);
        assert_eq!(rn.exits().len(), 1);
        assert_eq!(rn.calls().len(), 1);

        // Edges within main: entry→exit, entry→call, return→exit + E_CR.
        let main_edges: Vec<&Edge> =
            psg.edges().iter().filter(|e| psg.node(e.from()).routine() == main).collect();
        assert_eq!(main_edges.len(), 4);
        let entry = rn.entries()[0];
        let exit = rn.exits()[0];
        let (_, call, ret) = rn.calls()[0];
        let find = |from, to| main_edges.iter().find(|e| e.from() == from && e.to() == to).copied();
        let ea = find(entry, exit).expect("E_A entry→exit");
        let eb = find(entry, call).expect("E_B entry→call");
        let ec = find(ret, exit).expect("E_C return→exit");
        let ecr = find(call, ret).expect("E_CR call→return");
        assert_eq!(ecr.kind(), EdgeKind::CallReturn);

        // E_A: paths through blocks 1,2,4: must-def {t0,t1}, may-use {a0,ra}.
        assert!(ea.must_def().contains(Reg::T0));
        assert!(ea.must_def().contains(Reg::T1));
        assert!(ea.may_use().contains(Reg::A0));
        assert!(!ea.may_use().contains(Reg::T0));

        // E_B: paths through blocks 1,3: defines t0 (and ra via bsr).
        assert!(eb.must_def().contains(Reg::T0));
        assert!(!eb.must_def().contains(Reg::T1));
        assert!(eb.may_use().contains(Reg::A0));

        // E_C: block 4 only: defines t1, uses ra (ret).
        assert_eq!(ec.may_def(), RegSet::of(&[Reg::T1]));
        assert!(ec.may_use().contains(Reg::RA));
    }

    /// Figure 12: a 3-way branch in a loop with a call at each target
    /// produces 9 return→call flow edges without branch nodes and 6 edges
    /// through a branch node with them.
    fn figure12_builder() -> ProgramBuilder {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .label("top")
            .switch(Reg::T0, &["c1", "c2", "c3"])
            .label("c1")
            .call("f")
            .br("top")
            .label("c2")
            .call("f")
            .br("top")
            .label("c3")
            .call("f")
            .br("top");
        b.routine("f").ret();
        b
    }

    fn flow_edges_between_calls(p: &Program, psg: &Psg) -> usize {
        let main = p.routine_by_name("main").unwrap();
        psg.edges()
            .iter()
            .filter(|e| e.kind() == EdgeKind::FlowSummary && psg.node(e.from()).routine() == main)
            .count()
    }

    #[test]
    fn figure12_branch_nodes_reduce_nine_edges_to_six() {
        let b = figure12_builder();

        let without = AnalysisOptions { branch_nodes: false, ..AnalysisOptions::default() };
        let (p, _, psg) = build(&b, &without);
        // entry→{3 calls} = 3, return_i→call_j = 9. Total 12 flow edges.
        assert_eq!(flow_edges_between_calls(&p, &psg), 12);
        assert_eq!(psg.stats().branch_nodes, 0);

        let with = AnalysisOptions::default();
        let (p, _, psg) = build(&b, &with);
        // entry→branch 1, branch→calls 3, return_i→branch 3. Total 7.
        assert_eq!(flow_edges_between_calls(&p, &psg), 7);
        assert_eq!(psg.stats().branch_nodes, 1);
        // The return→call portion went from 9 to 6 (3 return→branch +
        // 3 branch→call), exactly the paper's reduction.
    }

    #[test]
    fn unknown_indirect_call_gets_calling_standard_label() {
        let mut b = ProgramBuilder::new();
        b.routine("main").jsr_unknown(Reg::PV).halt();
        let (_, _, psg) = build(&b, &AnalysisOptions::default());
        let cr = psg
            .edges()
            .iter()
            .find(|e| e.kind() == EdgeKind::CallReturn)
            .expect("call-return edge");
        let std = spike_isa::CallingStandard::alpha_nt();
        assert_eq!(cr.may_use(), std.unknown_call_used());
        assert_eq!(cr.may_def(), std.unknown_call_killed());
        assert_eq!(cr.must_def(), std.unknown_call_defined());
    }

    #[test]
    fn halt_and_unknown_jump_nodes_are_pinned_sinks() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .cond(spike_isa::BranchCond::Eq, Reg::A0, "j")
            .halt()
            .label("j")
            .insn(spike_isa::Instruction::Jmp { base: Reg::T0 });
        let (p, _, psg) = build(&b, &AnalysisOptions::default());
        let main = p.routine_by_name("main").unwrap();
        let rn = psg.routine_nodes(main);
        assert_eq!(rn.halts.len(), 1);
        assert_eq!(rn.unknown_jumps.len(), 1);
        assert!(psg.pinned[rn.halts[0].index()]);
        assert!(psg.pinned[rn.unknown_jumps[0].index()]);
        // Both received incoming flow edges from the entry.
        assert!(!psg.in_edges(rn.halts[0]).is_empty());
        assert!(!psg.in_edges(rn.unknown_jumps[0]).is_empty());
    }

    #[test]
    fn recursive_call_produces_self_routine_wiring() {
        let mut b = ProgramBuilder::new();
        b.routine("rec")
            .cond(spike_isa::BranchCond::Eq, Reg::A0, "base")
            .call("rec")
            .ret()
            .label("base")
            .ret();
        b.routine("main").call("rec").halt();
        let (p, _, psg) = build(&b, &AnalysisOptions::default());
        let rec = p.routine_by_name("rec").unwrap();
        let rn = psg.routine_nodes(rec);
        let entry = rn.entries()[0];
        // Two call sites target rec's entry: its own and main's.
        assert_eq!(psg.entry_cr_edges[entry.index()].len(), 2);
        // rec's return node broadcasts to rec's two exits.
        let (_, _, ret_node) = rn.calls()[0];
        assert_eq!(psg.return_exit_targets[ret_node.index()].len(), 2);
    }
}
