//! Reusable worklists for monotone fixpoint solvers.
//!
//! Every dataflow engine in this workspace iterates the same way: pull an
//! item, re-evaluate its transfer function, and push its dependents when
//! the value changed. The two containers here factor that loop's queue
//! out:
//!
//! * [`FifoWorklist`] — chaotic iteration in arrival order. Correct for
//!   any monotone system, but an item can be re-evaluated long before its
//!   inputs have settled.
//! * [`PriorityWorklist`] — items carry a precomputed *rank* and are
//!   popped lowest-rank-first. With ranks chosen so that an item's inputs
//!   rank below it (e.g. reverse postorder for forward problems, or a
//!   dependency postorder over an SCC), most items see their final inputs
//!   on the first visit and the evaluation count approaches one per item
//!   per stratum.
//!
//! Both deduplicate: pushing an already-queued item is a no-op, so the
//! queue length never exceeds the item universe.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A FIFO worklist over dense `usize` items with membership dedup.
#[derive(Clone, Debug, Default)]
pub struct FifoWorklist {
    queue: VecDeque<usize>,
    queued: Vec<bool>,
}

impl FifoWorklist {
    /// An empty worklist over items `0..universe`.
    pub fn new(universe: usize) -> FifoWorklist {
        FifoWorklist { queue: VecDeque::with_capacity(universe), queued: vec![false; universe] }
    }

    /// Queues `item` unless it is already queued. Returns whether the
    /// item was newly queued.
    pub fn push(&mut self, item: usize) -> bool {
        if std::mem::replace(&mut self.queued[item], true) {
            return false;
        }
        self.queue.push_back(item);
        true
    }

    /// Pops the oldest queued item.
    pub fn pop(&mut self) -> Option<usize> {
        let item = self.queue.pop_front()?;
        self.queued[item] = false;
        Some(item)
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// A priority worklist over dense `usize` items, popped lowest-rank-first
/// (ties broken by item id), with membership dedup.
///
/// The rank of an item is supplied at push time and must be stable for
/// the duration of one fixpoint run; the queue stores `(rank, item)`
/// pairs and the `queued` bitmap guarantees each item appears at most
/// once, so stale heap entries cannot arise.
///
/// The structure is designed for reuse: it drains to empty between
/// fixpoint runs (e.g. one run per call-graph SCC) and
/// [`PriorityWorklist::new`]'s backing allocations are kept across runs.
#[derive(Clone, Debug, Default)]
pub struct PriorityWorklist {
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    queued: Vec<bool>,
}

impl PriorityWorklist {
    /// An empty worklist over items `0..universe`.
    pub fn new(universe: usize) -> PriorityWorklist {
        PriorityWorklist { heap: BinaryHeap::new(), queued: vec![false; universe] }
    }

    /// Queues `item` at `rank` unless it is already queued. Returns
    /// whether the item was newly queued.
    pub fn push(&mut self, item: usize, rank: u32) -> bool {
        if std::mem::replace(&mut self.queued[item], true) {
            return false;
        }
        self.heap.push(Reverse((rank, item as u32)));
        true
    }

    /// Pops the lowest-ranked queued item.
    pub fn pop(&mut self) -> Option<usize> {
        let Reverse((_, item)) = self.heap.pop()?;
        let item = item as usize;
        self.queued[item] = false;
        Some(item)
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_dedups_and_preserves_arrival_order() {
        let mut wl = FifoWorklist::new(4);
        assert!(wl.push(2));
        assert!(wl.push(0));
        assert!(!wl.push(2), "second push of a queued item is a no-op");
        assert_eq!(wl.pop(), Some(2));
        assert!(wl.push(2), "popped items can be re-queued");
        assert_eq!(wl.pop(), Some(0));
        assert_eq!(wl.pop(), Some(2));
        assert_eq!(wl.pop(), None);
        assert!(wl.is_empty());
    }

    #[test]
    fn priority_pops_lowest_rank_first() {
        let mut wl = PriorityWorklist::new(5);
        wl.push(4, 10);
        wl.push(0, 30);
        wl.push(2, 20);
        assert_eq!(wl.pop(), Some(4));
        assert_eq!(wl.pop(), Some(2));
        // Re-queue mid-drain: the late arrival still sorts by rank.
        wl.push(4, 10);
        assert_eq!(wl.pop(), Some(4));
        assert_eq!(wl.pop(), Some(0));
        assert_eq!(wl.pop(), None);
    }

    #[test]
    fn priority_breaks_rank_ties_by_item_id() {
        let mut wl = PriorityWorklist::new(3);
        wl.push(2, 7);
        wl.push(1, 7);
        wl.push(0, 7);
        assert_eq!(wl.pop(), Some(0));
        assert_eq!(wl.pop(), Some(1));
        assert_eq!(wl.pop(), Some(2));
    }

    #[test]
    fn priority_dedups_within_a_run() {
        let mut wl = PriorityWorklist::new(2);
        assert!(wl.push(1, 5));
        assert!(!wl.push(1, 5));
        assert_eq!(wl.pop(), Some(1));
        assert!(wl.is_empty());
    }
}
