//! The SCC-wave scheduled fixpoint engine: a two-level solver for the
//! dataflow phases of §3.2/§3.3.
//!
//! The flat FIFO solvers in [`crate::dataflow`] treat the whole PSG as
//! one chaotic worklist, so a caller's nodes can be re-evaluated many
//! times before its callees have converged. But interprocedural
//! propagation in the PSG is *structured*: every PSG edge is
//! intra-routine, and information crosses routine boundaries only
//! through two broadcasts — entry-node summaries onto the call-return
//! edges of callers (phase 1, strictly callee→caller) and return-node
//! liveness onto callee exits (phase 2, strictly caller→callee). The
//! call graph's SCC condensation therefore stratifies each phase
//! exactly:
//!
//! 1. **Waves.** Condense the call graph ([`Condensation`]) and solve
//!    phase 1 over the bottom-up waves (callees first), phase 2 over the
//!    top-down waves (callers first). When a component is scheduled,
//!    every component it reads across the boundary has *converged*: its
//!    values are final, so freezing them is not an approximation.
//!    Components inside one wave have no call edges between them (an
//!    edge always separates wave levels) and each writes only its own
//!    nodes' values and its own routines' edge labels, so a wave's
//!    components solve in parallel on the [`crate::parallel`] pool with
//!    bit-identical results at any worker count.
//! 2. **Routine-level priority worklists.** Within a component, the
//!    unit of scheduling is the *routine*, popped callees-first in
//!    phase 1 and callers-first in phase 2 from a [`PriorityWorklist`]. A
//!    popped routine *pulls* its interprocedural inputs (call-return
//!    labels from source entries; exit liveness from return nodes),
//!    solves its own handful of nodes to a local fixpoint, and only
//!    then compares its boundary values — entry summaries in phase 1,
//!    return liveness in phase 2 — against their values before the
//!    solve. Dependent routines are pushed only if the boundary moved.
//!    This *batches* the §3.2/§3.3 broadcasts: where the chaotic FIFO
//!    re-queues every caller each time a callee entry grows by a
//!    register, the scheduled engine lets the callee finish growing
//!    first and bills its callers once per settled change.
//! 3. **Node solves.** Inside one routine the nodes are popped
//!    sinks-first (descending creation order — the direction backward
//!    flow propagates). The first solve seeds every node; a *re*-solve
//!    seeds only the nodes whose pulled inputs actually changed, so a
//!    routine pushed spuriously costs zero evaluations.
//!
//! Cross-component inputs arrive through the same pull, reading values
//! frozen by earlier waves. Every write stays inside the owning
//! component — the invariant that makes the wave parallelism race-free
//! — and the whole discipline is exact because the least fixpoint of a
//! monotone system is unique: any schedule that evaluates until nothing
//! changes produces the same solution the chaotic FIFO reference does,
//! down to the bit.
//!
//! Incremental runs compose naturally: the reset closures of
//! [`crate::incremental`] are caller-/callee-closed, hence saturated on
//! whole SCCs, so a seeded run simply schedules the components that
//! contain reset nodes and skips every other wave slot.

use spike_callgraph::{CallGraph, Condensation};
use spike_cfg::ProgramCfg;
use spike_isa::RegSet;
use spike_program::{Program, RoutineId};

use crate::dataflow::{phase1_init_value, phase2_init_value};
use crate::parallel::{par_map_with_pool, SharedMut};
use crate::psg::{Edge, EdgeId, EdgeKind, NodeId, NodeKind, Psg, RoutineNodes};
use crate::worklist::PriorityWorklist;

/// The precomputed schedule for one PSG: the call-graph condensation,
/// the node and routine partitions, per-phase priority ranks, and the
/// edge/exit directories the per-routine pulls need.
///
/// The schedule borrows nothing and stores nothing on the [`Psg`]; it is
/// built per analysis run and dropped afterwards, so `memory_bytes`
/// accounting is identical under both schedulers.
#[derive(Clone)]
pub(crate) struct SccSchedule {
    pub(crate) cond: Condensation,
    /// Per component: the PSG nodes its routines own, ascending.
    pub(crate) comp_nodes: Vec<Vec<NodeId>>,
    /// Per node: the owning component.
    pub(crate) comp_of: Vec<u32>,
    /// Per routine: the owning component.
    pub(crate) comp_of_routine: Vec<u32>,
    /// Per routine: every PSG node it owns, ascending.
    pub(crate) routine_nodes: Vec<Vec<NodeId>>,
    /// Per routine: the known-target call-return edges it owns (the
    /// edges whose labels its phase-1 pull recomputes).
    pub(crate) routine_cr_edges: Vec<Vec<EdgeId>>,
    /// Per routine: phase-1 priority — its position in the bottom-up
    /// SCC order, so callees pop before their callers.
    pub(crate) rrank1: Vec<u32>,
    /// Per routine: phase-2 priority — the reverse, callers first.
    pub(crate) rrank2: Vec<u32>,
    /// Per node: intra-routine priority — descending creation order, so
    /// sinks pop first and every sweep follows the backward flow.
    pub(crate) node_rank: Vec<u32>,
    /// Per node: one forward flow-summary out-edge (its target ranks
    /// below the node), or `u32::MAX`. Phase 1 seeds the node's values
    /// along this edge before solving: a single tree path's `MAY` union
    /// under-approximates the all-paths union and its `MUST` chain
    /// over-approximates the all-paths intersection, so the seed is a
    /// safe starting point on both lattices — and it hands loop
    /// back-edge readers a near-final value up front instead of the
    /// neutral `(∅, ALL)` that forces a second visit of every cycle.
    pub(crate) tree_edge: Vec<u32>,
    /// Per node: the return nodes broadcasting phase-2 liveness into it
    /// (inverse of `return_exit_targets`; non-empty only for exits of
    /// called routines).
    pub(crate) exit_sources: Vec<Vec<NodeId>>,
}

impl SccSchedule {
    /// Builds the schedule for `psg` from the program's call graph.
    pub(crate) fn build(program: &Program, cfg: &ProgramCfg, psg: &Psg) -> SccSchedule {
        let graph = CallGraph::build(program, cfg);
        let sccs = graph.sccs();
        let cond = sccs.condense(&graph);
        let (comp_nodes, comp_of) = psg.partition_by_component(cond.sccs());
        let n = psg.nodes().len();
        let n_routines = program.routines().len();

        let mut routine_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); n_routines];
        for (i, kind) in psg.nodes().iter().enumerate() {
            routine_nodes[kind.routine().index()].push(NodeId::from_index(i));
        }

        let mut routine_cr_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); n_routines];
        for (ei, edge) in psg.edges().iter().enumerate() {
            if !psg.cr_sources[ei].is_empty() {
                let owner = psg.nodes()[edge.from().index()].routine().index();
                routine_cr_edges[owner].push(EdgeId::from_index(ei));
            }
        }

        let mut exit_sources: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, targets) in psg.return_exit_targets.iter().enumerate() {
            for &t in targets {
                exit_sources[t.index()].push(NodeId::from_index(i));
            }
        }

        let comp_of_routine: Vec<u32> =
            (0..n_routines).map(|r| sccs.component_of(RoutineId::from_index(r)) as u32).collect();
        // Callee-first rank: components in bottom-up order; *within* a
        // recursive component, a greedy feedback-arc ordering
        // (Eades–Lin–Smyth) of the callee→caller digraph. The fewer the
        // arcs where a caller ranks below one of its callees, the more
        // routines first-solve with complete inputs and the smaller the
        // deltas the settled-boundary rounds must chase. (A plain DFS
        // postorder leaves nearly half the arcs of a dense recursive
        // component pointing backwards.)
        let mut rrank1 = vec![0u32; n_routines];
        let mut next = 0u32;
        for component in sccs.bottom_up() {
            for &r in &feedback_arc_order(component, &graph) {
                rrank1[r.index()] = next;
                next += 1;
            }
        }
        // Phase 2 reverses the priority. An arc is schedule-friendly in
        // both phases at once: phase 1 wants the callee popped first,
        // phase 2 the caller, and reversing the order swaps exactly
        // that — so one feedback-arc ordering serves both.
        let rrank2: Vec<u32> = rrank1.iter().map(|&r| next - 1 - r).collect();

        // Intra-routine node order: a feedback-arc ordering of each
        // routine's value-dependency digraph (arc target→reader, the
        // direction backward dataflow propagates). Out-edge targets
        // then rank below their readers everywhere except on the few
        // unavoidable loop back edges, so a worklist sweep walks the
        // routine in backward-flow order and loop-carried deltas wrap
        // as rarely as the CFG structure allows. Ranks are comparable
        // within one routine only — the node worklist never holds nodes
        // of two routines at once.
        let mut node_rank = vec![0u32; n];
        let mut local = Vec::new();
        for nodes in &routine_nodes {
            if nodes.is_empty() {
                continue;
            }
            let base = nodes[0].index();
            let span = nodes[nodes.len() - 1].index() - base + 1;
            local.clear();
            local.resize(span, u32::MAX);
            for (i, x) in nodes.iter().enumerate() {
                local[x.index() - base] = i as u32;
            }
            let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
            let mut in_adj: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
            for (i, x) in nodes.iter().enumerate() {
                for &e in &psg.out_edges[x.index()] {
                    let y = psg.edges()[e.index()].to().index();
                    debug_assert!(y >= base && y - base < span, "PSG edges are intra-routine");
                    let ly = local[y - base];
                    if ly as usize != i {
                        // Reader `x` depends on target `y`: arc y→x.
                        out_adj[ly as usize].push(i as u32);
                        in_adj[i].push(ly);
                    }
                }
            }
            for (rank, &x) in greedy_fas(&out_adj, &in_adj).iter().enumerate() {
                node_rank[nodes[x as usize].index()] = rank as u32;
            }
        }
        // The warm-seed pass walks each routine's nodes targets-first.
        for nodes in &mut routine_nodes {
            nodes.sort_unstable_by_key(|x| node_rank[x.index()]);
        }
        let mut tree_edge = vec![u32::MAX; n];
        for x in 0..n {
            if psg.pinned[x] {
                continue;
            }
            for &e in &psg.out_edges[x] {
                let edge = &psg.edges()[e.index()];
                // Only flow-summary edges: their labels are static, while
                // a call-return label may still sit below its final value
                // when the seed pass reads it.
                if edge.kind() == EdgeKind::FlowSummary
                    && node_rank[edge.to().index()] < node_rank[x]
                {
                    tree_edge[x] = e.index() as u32;
                    break;
                }
            }
        }

        SccSchedule {
            cond,
            comp_nodes,
            comp_of,
            comp_of_routine,
            routine_nodes,
            routine_cr_edges,
            rrank1,
            rrank2,
            node_rank,
            tree_edge,
            exit_sources,
        }
    }

    /// Number of condensation waves (the schedule's sequential depth).
    pub(crate) fn waves(&self) -> usize {
        self.cond.waves()
    }

    /// The widest wave: the cross-component parallelism available to one
    /// wave's solvers.
    pub(crate) fn max_wave_width(&self) -> usize {
        self.cond.max_wave_width()
    }

    /// Which components a run must solve: all of them from scratch, or
    /// exactly the components containing reset nodes for a seeded run.
    /// The incremental reset closures are caller-/callee-closed and thus
    /// saturated on whole SCCs (debug-asserted here), which is what
    /// makes "schedule only the reset components" exact.
    pub(crate) fn active_components(&self, reset: Option<&[bool]>) -> Vec<bool> {
        let Some(mask) = reset else {
            return vec![true; self.comp_nodes.len()];
        };
        let mut active = vec![false; self.comp_nodes.len()];
        for (i, &r) in mask.iter().enumerate() {
            if r {
                active[self.comp_of[i] as usize] = true;
            }
        }
        #[cfg(debug_assertions)]
        for (c, nodes) in self.comp_nodes.iter().enumerate() {
            if active[c] {
                for &x in nodes {
                    debug_assert!(
                        mask[x.index()],
                        "reset masks must cover whole call-graph components"
                    );
                }
            }
        }
        active
    }

    /// The call-graph condensation the schedule was built over. The
    /// demand-driven engine ([`crate::query`]) walks it to collect the
    /// caller/callee cones of a query target.
    pub(crate) fn condensation(&self) -> &Condensation {
        &self.cond
    }

    /// The condensation component owning `routine`.
    pub(crate) fn component_of_routine(&self, routine: RoutineId) -> usize {
        self.comp_of_routine[routine.index()] as usize
    }

    /// The number of condensation components.
    pub(crate) fn components(&self) -> usize {
        self.comp_nodes.len()
    }
}

/// Orders one call-graph component so that as few arcs as possible run
/// from a caller down to one of its callees — the greedy feedback-arc
/// heuristic of Eades, Lin and Smyth over the callee→caller digraph.
/// Sinks of the digraph (routines calling no one else in the component)
/// peel off to the back, sources (routines nobody in the component
/// calls) to the front; when neither exists the node with the largest
/// out-minus-in degree is placed next, and the peeling repeats on what
/// is left.
fn feedback_arc_order(component: &[RoutineId], graph: &CallGraph) -> Vec<RoutineId> {
    let n = component.len();
    if n <= 1 {
        return component.to_vec();
    }
    let max_idx = component.iter().map(|r| r.index()).max().unwrap();
    let mut local = vec![u32::MAX; max_idx + 1];
    for (i, r) in component.iter().enumerate() {
        local[r.index()] = i as u32;
    }
    // Arc callee→caller: the direction phase-1 information flows.
    let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut in_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, r) in component.iter().enumerate() {
        for &w in graph.callees(*r) {
            if w.index() > max_idx {
                continue;
            }
            let lw = local[w.index()];
            if lw != u32::MAX && lw as usize != i {
                out_adj[lw as usize].push(i as u32);
                in_adj[i].push(lw);
            }
        }
    }
    greedy_fas(&out_adj, &in_adj).into_iter().map(|x| component[x as usize]).collect()
}

/// The Eades–Lin–Smyth greedy core shared by the routine-level and
/// node-level orderings: returns a permutation of `0..n` minimizing
/// (heuristically) the arcs that point from a later position to an
/// earlier one. Arcs follow information flow, so "few backward arcs"
/// means "few values read before they have settled".
fn greedy_fas(out_adj: &[Vec<u32>], in_adj: &[Vec<u32>]) -> Vec<u32> {
    let n = out_adj.len();
    let mut outdeg: Vec<u32> = out_adj.iter().map(|a| a.len() as u32).collect();
    let mut indeg: Vec<u32> = in_adj.iter().map(|a| a.len() as u32).collect();
    let mut alive = vec![true; n];
    let mut head: Vec<u32> = Vec::with_capacity(n);
    let mut tail: Vec<u32> = Vec::new();
    let mut remaining = n;
    while remaining > 0 {
        let mut pick = usize::MAX;
        let mut best = i64::MIN;
        let mut peeled = false;
        for x in 0..n {
            if !alive[x] {
                continue;
            }
            if outdeg[x] == 0 {
                alive[x] = false;
                remaining -= 1;
                peeled = true;
                for &z in &in_adj[x] {
                    if alive[z as usize] {
                        outdeg[z as usize] -= 1;
                    }
                }
                tail.push(x as u32);
            } else if indeg[x] == 0 {
                alive[x] = false;
                remaining -= 1;
                peeled = true;
                for &y in &out_adj[x] {
                    if alive[y as usize] {
                        indeg[y as usize] -= 1;
                    }
                }
                head.push(x as u32);
            } else {
                let d = outdeg[x] as i64 - indeg[x] as i64;
                if d > best {
                    best = d;
                    pick = x;
                }
            }
        }
        // Only trust `pick` when the pass removed nothing: a peel would
        // have changed the degrees it was chosen by.
        if !peeled && pick != usize::MAX {
            alive[pick] = false;
            remaining -= 1;
            for &z in &in_adj[pick] {
                if alive[z as usize] {
                    outdeg[z as usize] -= 1;
                }
            }
            for &y in &out_adj[pick] {
                if alive[y as usize] {
                    indeg[y as usize] -= 1;
                }
            }
            head.push(pick as u32);
        }
    }
    tail.reverse();
    head.extend(tail);

    // Sifting refinement: repeatedly move single vertices to the
    // position that minimizes their backward arcs, until a full pass
    // finds no improving move (bounded, since every move strictly
    // reduces the backward-arc count).
    let mut pos_of = vec![0u32; n];
    for (p, &v) in head.iter().enumerate() {
        pos_of[v as usize] = p as u32;
    }
    let mut contrib = vec![0i32; n];
    loop {
        let mut improved = false;
        for v in 0..n {
            if out_adj[v].is_empty() && in_adj[v].is_empty() {
                continue;
            }
            // Walking the insertion point of `v` left to right past a
            // vertex `u`: arcs u→v turn forward (cost −1), arcs v→u
            // turn backward (cost +1).
            for &u in &out_adj[v] {
                contrib[pos_of[u as usize] as usize] += 1;
            }
            for &u in &in_adj[v] {
                contrib[pos_of[u as usize] as usize] -= 1;
            }
            let here = pos_of[v] as usize;
            // Scan the insertion slots left to right; `best_p == -1` is
            // the slot in front of everything (relative cost 0).
            let (mut run, mut best, mut best_p) = (0i32, 0i32, -1i64);
            let mut cost_here = 0i32;
            for (p, &c) in contrib.iter().enumerate().take(n) {
                if p == here {
                    cost_here = run;
                    continue;
                }
                run += c;
                if run < best {
                    best = run;
                    best_p = p as i64;
                }
            }
            // Reset the scratch before any positions shift.
            for &u in &out_adj[v] {
                contrib[pos_of[u as usize] as usize] = 0;
            }
            for &u in &in_adj[v] {
                contrib[pos_of[u as usize] as usize] = 0;
            }
            if best < cost_here {
                let to = if best_p < here as i64 { (best_p + 1) as usize } else { best_p as usize };
                if here < to {
                    for p in here..to {
                        let w = head[p + 1];
                        head[p] = w;
                        pos_of[w as usize] = p as u32;
                    }
                } else {
                    for p in (to..here).rev() {
                        let w = head[p];
                        head[p + 1] = w;
                        pos_of[w as usize] = (p + 1) as u32;
                    }
                }
                head[to] = v as u32;
                pos_of[v] = to as u32;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    head
}

/// Reusable per-worker scratch for the component solvers: the
/// routine-level and node-level worklists plus the per-routine
/// "already seeded in this stratum" flags (a re-solved routine seeds
/// only the nodes its pull actually changed).
pub(crate) struct CompSolver {
    pub(crate) routine_wl: PriorityWorklist,
    pub(crate) node_wl: PriorityWorklist,
    pub(crate) seeded: Vec<bool>,
    /// Back-edge pushes (a boundary change flowing to a routine ranked
    /// at or below the one being solved) park here until the current
    /// round drains, so one round's worth of changes is absorbed by a
    /// single re-solve instead of being chased a register at a time.
    pub(crate) deferred: Vec<bool>,
    pub(crate) deferred_list: Vec<u32>,
    /// The node-level twin of `deferred`: loop-carried pushes inside one
    /// routine solve park until the current sweep drains, batching each
    /// loop's wrap-around into one extra pass.
    node_deferred: Vec<bool>,
    node_deferred_list: Vec<u32>,
}

impl CompSolver {
    pub(crate) fn new(n_routines: usize, n_nodes: usize) -> CompSolver {
        CompSolver {
            routine_wl: PriorityWorklist::new(n_routines),
            node_wl: PriorityWorklist::new(n_nodes),
            seeded: vec![false; n_routines],
            deferred: vec![false; n_routines],
            deferred_list: Vec::new(),
            node_deferred: vec![false; n_nodes],
            node_deferred_list: Vec::new(),
        }
    }

    /// Queues the boundary-change push `target` (rank `rank`), deferring
    /// it to the next round when it does not run strictly after the
    /// routine currently being solved (rank `current`).
    pub(crate) fn push_routine(&mut self, target: usize, rank: u32, current: u32) {
        if self.deferred[target] {
            return;
        }
        if rank > current {
            self.routine_wl.push(target, rank);
        } else {
            self.deferred[target] = true;
            self.deferred_list.push(target as u32);
        }
    }

    /// Queues node `target` during a routine solve, deferring loop
    /// back-edge pushes (rank at or below the node being evaluated) to
    /// the sweep boundary.
    pub(crate) fn push_node(&mut self, target: usize, rank: u32, current: u32) {
        if self.node_deferred[target] {
            return;
        }
        if rank > current {
            self.node_wl.push(target, rank);
        } else {
            self.node_deferred[target] = true;
            self.node_deferred_list.push(target as u32);
        }
    }

    /// Whether any node pushes are parked for the next sweep round —
    /// pre-sweep pulls can park through [`CompSolver::push_node`], so a
    /// solve must not bail on an empty worklist while these wait.
    pub(crate) fn has_deferred_nodes(&self) -> bool {
        !self.node_deferred_list.is_empty()
    }

    /// Drains the parked loop-carried node pushes back into the node
    /// worklist; returns `false` when there were none (sweep converged).
    pub(crate) fn flush_deferred_nodes(&mut self, node_rank: &[u32]) -> bool {
        if self.node_deferred_list.is_empty() {
            return false;
        }
        let mut list = std::mem::take(&mut self.node_deferred_list);
        for &x in &list {
            self.node_deferred[x as usize] = false;
            self.node_wl.push(x as usize, node_rank[x as usize]);
        }
        list.clear();
        self.node_deferred_list = list;
        true
    }
}

/// Shared views for the phase-1 wave solvers. The immutable topology is
/// borrowed normally; the value arrays and edge labels go through
/// [`SharedMut`] because components of one wave write disjoint parts of
/// them concurrently.
struct Phase1Views<'a> {
    nodes: &'a [NodeKind],
    out_edges: &'a [Vec<EdgeId>],
    in_edges: &'a [Vec<EdgeId>],
    routines: &'a [RoutineNodes],
    cr_sources: &'a [Vec<NodeId>],
    entry_cr_edges: &'a [Vec<EdgeId>],
    pinned: &'a [bool],
    edges: SharedMut<'a, Edge>,
    may_use: SharedMut<'a, RegSet>,
    may_def: SharedMut<'a, RegSet>,
    must_def: SharedMut<'a, RegSet>,
}

/// Shared views for the phase-2 wave solvers. Edge labels are frozen in
/// phase 2; only the liveness array is written.
struct Phase2Views<'a> {
    nodes: &'a [NodeKind],
    out_edges: &'a [Vec<EdgeId>],
    in_edges: &'a [Vec<EdgeId>],
    routines: &'a [RoutineNodes],
    return_exit_targets: &'a [Vec<NodeId>],
    pinned: &'a [bool],
    edges: &'a [Edge],
    live: SharedMut<'a, RegSet>,
}

/// Scheduled phase 1 (§3.2): bottom-up waves over the condensation,
/// each component solved to its local fixpoint by a priority worklist.
/// Semantically identical to [`crate::dataflow::run_phase1_seeded`] —
/// same least fixpoint, bit for bit — with the same `reset` contract.
/// Returns the number of node evaluations.
pub(crate) fn run_phase1_scheduled(
    psg: &mut Psg,
    schedule: &SccSchedule,
    reset: Option<&[bool]>,
    workers: usize,
) -> usize {
    let n = psg.nodes().len();
    debug_assert!(reset.is_none_or(|m| m.len() == n), "reset mask must cover every node");
    init_phase1_values(psg, schedule, reset);
    // No call-return edge re-initialization (unlike the seeded FIFO
    // path): each scheduled component refreshes its own known-target
    // labels from source values before any read, which supersedes
    // whatever the labels held.
    let active = schedule.active_components(reset);

    let Psg {
        ref nodes,
        ref mut edges,
        ref out_edges,
        ref in_edges,
        ref routines,
        ref cr_sources,
        ref entry_cr_edges,
        ref pinned,
        ref mut may_use,
        ref mut may_def,
        ref mut must_def,
        ..
    } = *psg;
    let views = Phase1Views {
        nodes,
        out_edges,
        in_edges,
        routines,
        cr_sources,
        entry_cr_edges,
        pinned,
        edges: SharedMut::new(edges),
        may_use: SharedMut::new(may_use),
        may_def: SharedMut::new(may_def),
        must_def: SharedMut::new(must_def),
    };
    run_waves(schedule.cond.waves_bottom_up(), &active, workers, schedule, n, |cs, c| {
        // SAFETY: `run_waves` hands each in-flight component to exactly
        // one worker, components of one wave are call-disjoint, and the
        // solver touches only component-owned values/labels plus frozen
        // earlier-wave values — the `SharedMut` aliasing contract.
        unsafe { solve_comp_phase1(&views, schedule, c, cs) }
    })
}

/// The phase-1 prologue shared by [`run_phase1_scheduled`] and the
/// demand-driven engine ([`crate::query`]): initialize every (reset)
/// node's phase-1 values, then warm-seed along the spanning tree,
/// targets before readers (the routine node lists are sorted by rank).
/// Each seed is one term of the node's transfer function, so it bounds
/// the final value from the safe side on every lattice; see
/// [`SccSchedule::tree_edge`]. The pass is purely intra-routine and
/// reads only static flow-summary labels, so the demand engine can run
/// it once up front regardless of which components later solve.
pub(crate) fn init_phase1_values(psg: &mut Psg, schedule: &SccSchedule, reset: Option<&[bool]>) {
    let n = psg.nodes().len();
    for i in 0..n {
        if reset.is_none_or(|m| m[i]) {
            let (may_use, may_def, must_def) = phase1_init_value(psg.nodes[i], psg.uj_live[i]);
            psg.may_use[i] = may_use;
            psg.may_def[i] = may_def;
            psg.must_def[i] = must_def;
        }
    }
    for nodes in &schedule.routine_nodes {
        for &x in nodes {
            let xi = x.index();
            if reset.is_some_and(|m| !m[xi]) {
                continue;
            }
            let te = schedule.tree_edge[xi];
            if te == u32::MAX {
                continue;
            }
            let edge = &psg.edges[te as usize];
            let yi = edge.to().index();
            psg.may_def[xi] = edge.may_def() | psg.may_def[yi];
            psg.must_def[xi] = edge.must_def() | psg.must_def[yi];
            psg.may_use[xi] = edge.may_use() | (psg.may_use[yi] - edge.must_def());
        }
    }
}

/// Solves the listed components' phase-1 systems serially, in list
/// order. The demand-driven entry point: the caller must order `comps`
/// bottom-up (every callee component of a listed component either
/// precedes it in the list or has already converged) — ascending
/// component index is exactly that order, since the condensation
/// numbers callees before callers. Returns node evaluations.
pub(crate) fn solve_phase1_components(
    psg: &mut Psg,
    schedule: &SccSchedule,
    comps: &[usize],
    cs: &mut CompSolver,
) -> usize {
    debug_assert!(comps.windows(2).all(|w| w[0] < w[1]), "phase-1 cone solves bottom-up");
    let Psg {
        ref nodes,
        ref mut edges,
        ref out_edges,
        ref in_edges,
        ref routines,
        ref cr_sources,
        ref entry_cr_edges,
        ref pinned,
        ref mut may_use,
        ref mut may_def,
        ref mut must_def,
        ..
    } = *psg;
    let views = Phase1Views {
        nodes,
        out_edges,
        in_edges,
        routines,
        cr_sources,
        entry_cr_edges,
        pinned,
        edges: SharedMut::new(edges),
        may_use: SharedMut::new(may_use),
        may_def: SharedMut::new(may_def),
        must_def: SharedMut::new(must_def),
    };
    let mut visits = 0usize;
    for &c in comps {
        // SAFETY: components solve one at a time with exclusive access
        // to the whole PSG, so the `SharedMut` aliasing contract holds
        // trivially.
        visits += unsafe { solve_comp_phase1(&views, schedule, c, cs) };
    }
    visits
}

/// Initializes phase-2 liveness for the nodes of component `c` — the
/// warm `MAY-USE` start of [`run_phase2_scheduled`] restricted to one
/// component — and applies the exit seeds landing in it. The demand
/// engine calls this exactly once per component, after the component's
/// phase-1 values converged (the warm start reads final `MAY-USE`) and
/// before its phase-2 solve.
pub(crate) fn init_phase2_component(
    psg: &mut Psg,
    schedule: &SccSchedule,
    c: usize,
    exit_seeds: &[(NodeId, RegSet)],
) {
    for &x in &schedule.comp_nodes[c] {
        let i = x.index();
        psg.live[i] = phase2_init_value(psg.nodes[i], psg.uj_live[i]) | psg.may_use[i];
    }
    for &(node, set) in exit_seeds {
        if schedule.comp_of[node.index()] as usize == c {
            psg.live[node.index()] |= set;
        }
    }
}

/// Solves the listed components' phase-2 systems serially, in list
/// order. The caller must order `comps` top-down (every caller
/// component of a listed component either precedes it in the list or
/// has already converged) — descending component index — and must have
/// initialized each listed component via [`init_phase2_component`].
/// Returns node evaluations.
pub(crate) fn solve_phase2_components(
    psg: &mut Psg,
    schedule: &SccSchedule,
    comps: &[usize],
    cs: &mut CompSolver,
) -> usize {
    debug_assert!(comps.windows(2).all(|w| w[0] > w[1]), "phase-2 cone solves top-down");
    let Psg {
        ref nodes,
        ref edges,
        ref out_edges,
        ref in_edges,
        ref routines,
        ref return_exit_targets,
        ref pinned,
        ref mut live,
        ..
    } = *psg;
    let views = Phase2Views {
        nodes,
        out_edges,
        in_edges,
        routines,
        return_exit_targets,
        pinned,
        edges,
        live: SharedMut::new(live),
    };
    let mut visits = 0usize;
    for &c in comps {
        // SAFETY: as in [`solve_phase1_components`] — strictly serial,
        // exclusive access to the whole liveness array.
        visits += unsafe { solve_comp_phase2(&views, schedule, c, cs) };
    }
    visits
}

/// Scheduled phase 2 (§3.3): top-down waves, priority worklists.
/// Semantically identical to [`crate::dataflow::run_phase2_seeded`].
/// Returns the number of node evaluations.
pub(crate) fn run_phase2_scheduled(
    psg: &mut Psg,
    schedule: &SccSchedule,
    exit_seeds: &[(NodeId, RegSet)],
    reset: Option<&[bool]>,
    workers: usize,
) -> usize {
    let n = psg.nodes().len();
    debug_assert!(reset.is_none_or(|m| m.len() == n), "reset mask must cover every node");
    for i in 0..n {
        if reset.is_none_or(|m| m[i]) {
            // Warm start at the phase-1 `MAY-USE` fixpoint: liveness is
            // the same equation system plus exit seeds, so `MAY-USE` is
            // an exact under-approximation that is already quiescent
            // everywhere except downstream of the exits. The solver then
            // only propagates exit-liveness increments, and the unique
            // least fixpoint above any under-approximation is the same
            // solution the cold-started FIFO reference reaches.
            psg.live[i] = phase2_init_value(psg.nodes[i], psg.uj_live[i]) | psg.may_use[i];
        }
    }
    // Seeds on clean exits are no-ops: their converged liveness already
    // contains the seed.
    for &(node, set) in exit_seeds {
        psg.live[node.index()] |= set;
    }
    // No broadcast replay (unlike the seeded FIFO path): each scheduled
    // component pulls the liveness its exits receive — including from
    // clean callers' converged return nodes — when its wave starts.
    let active = schedule.active_components(reset);

    let Psg {
        ref nodes,
        ref edges,
        ref out_edges,
        ref in_edges,
        ref routines,
        ref return_exit_targets,
        ref pinned,
        ref mut live,
        ..
    } = *psg;
    let views = Phase2Views {
        nodes,
        out_edges,
        in_edges,
        routines,
        return_exit_targets,
        pinned,
        edges,
        live: SharedMut::new(live),
    };
    run_waves(schedule.cond.waves_top_down(), &active, workers, schedule, n, |cs, c| {
        // SAFETY: as in phase 1 — one worker per in-flight component,
        // writes confined to the component's own liveness slots.
        unsafe { solve_comp_phase2(&views, schedule, c, cs) }
    })
}

/// Drives `solve` over the scheduled waves: active components of one
/// wave run concurrently (each on its own reusable [`CompSolver`]),
/// waves run in order with a thread-join barrier between them.
/// Single-component waves — the common case on deep call chains —
/// reuse one persistent solver with no thread traffic at all. Returns
/// total evaluations.
pub(crate) fn run_waves(
    waves: &[Vec<usize>],
    active: &[bool],
    workers: usize,
    schedule: &SccSchedule,
    n_nodes: usize,
    solve: impl Fn(&mut CompSolver, usize) -> usize + Sync,
) -> usize {
    let n_routines = schedule.routine_nodes.len();
    let mut visits = 0usize;
    // One solver pool for the whole phase: the worklist heaps, dedup
    // buffers and deferral scratch are allocated once and reused by
    // every wave (a solver drains itself back to empty after each
    // component, so reuse cannot leak state between solves). Serial
    // waves run on slot 0; parallel waves grow the pool to the worker
    // count on first use.
    let mut pool = vec![CompSolver::new(n_routines, n_nodes)];
    for wave in waves {
        let batch: Vec<usize> = wave.iter().copied().filter(|&c| active[c]).collect();
        if batch.len() <= 1 || workers == 1 {
            for &c in &batch {
                visits += solve(&mut pool[0], c);
            }
        } else {
            while pool.len() < workers.min(batch.len()) {
                pool.push(CompSolver::new(n_routines, n_nodes));
            }
            visits += par_map_with_pool(&mut pool, batch.len(), |cs, k| solve(cs, batch[k]))
                .into_iter()
                .sum::<usize>();
        }
    }
    visits
}

/// Solves phase 1 for component `c` to its local fixpoint: stratum A
/// (`MAY-DEF`/`MUST-DEF`) over a routine-level worklist, then stratum B
/// (`MAY-USE` against the frozen kill sets) the same way — valid per
/// component because every cross-component input of both strata
/// converged in an earlier wave.
///
/// # Safety
/// The caller must guarantee exclusive access to component `c`'s node
/// values and to the edges owned by `c`'s routines, and that every
/// other component this reads (broadcast sources, foreign edge
/// endpoints) is not being written concurrently. The wave schedule
/// provides both.
unsafe fn solve_comp_phase1(
    v: &Phase1Views<'_>,
    s: &SccSchedule,
    c: usize,
    cs: &mut CompSolver,
) -> usize {
    let routines = &s.cond.sccs().components()[c];
    let mut visits = 0usize;
    for stratum in [Stratum::Defs, Stratum::Uses] {
        for &r in routines.iter() {
            cs.seeded[r.index()] = false;
            cs.routine_wl.push(r.index(), s.rrank1[r.index()]);
        }
        loop {
            while let Some(ri) = cs.routine_wl.pop() {
                visits += solve_routine_phase1(v, s, c, ri, stratum, cs);
            }
            if cs.deferred_list.is_empty() {
                break;
            }
            let mut list = std::mem::take(&mut cs.deferred_list);
            for &r in &list {
                cs.deferred[r as usize] = false;
                cs.routine_wl.push(r as usize, s.rrank1[r as usize]);
            }
            list.clear();
            cs.deferred_list = list;
        }
    }
    visits
}

/// The two sub-problems of phase 1, solved strictly in order: `MAY-USE`
/// reads the `MUST-DEF` kill sets, so they must be final first.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Stratum {
    Defs,
    Uses,
}

/// Solves one routine of component `c` to its local phase-1 fixpoint:
/// pull the routine's known-target call-return labels from current
/// source values, iterate its own nodes, then push the co-resident
/// caller routines whose inputs the solve actually moved (comparing
/// the routine's entry values against their pre-solve snapshot — the
/// batched §3.2 broadcast).
///
/// The first solve seeds every node; a re-solve seeds only the call
/// nodes whose pulled labels changed, so convergence is detected
/// without evaluating anything.
///
/// # Safety
/// As [`solve_comp_phase1`].
unsafe fn solve_routine_phase1(
    v: &Phase1Views<'_>,
    s: &SccSchedule,
    c: usize,
    r: usize,
    stratum: Stratum,
    cs: &mut CompSolver,
) -> usize {
    let first = !cs.seeded[r];
    for &e in &s.routine_cr_edges[r] {
        // A re-solve seeds the owning call node only when the label
        // delta can move its value: monotone evaluation makes a grown
        // bit the owner already carries (or a lost `MUST-DEF` bit it
        // already lacks) a provable no-op.
        match stratum {
            Stratum::Defs => {
                let (grown, lost) = recompute_cr_defs_view(v, e);
                if !first {
                    let owner = v.edges.get(e.index()).from().index();
                    if !grown.is_subset(*v.may_def.get(owner))
                        || !(lost & *v.must_def.get(owner)).is_empty()
                    {
                        cs.node_wl.push(owner, s.node_rank[owner]);
                    }
                }
            }
            Stratum::Uses => {
                let grown = recompute_cr_uses_view(v, e);
                if !first {
                    let owner = v.edges.get(e.index()).from().index();
                    if !grown.is_subset(*v.may_use.get(owner)) {
                        cs.node_wl.push(owner, s.node_rank[owner]);
                    }
                }
            }
        }
    }
    if first {
        cs.seeded[r] = true;
        for &x in &s.routine_nodes[r] {
            cs.node_wl.push(x.index(), s.node_rank[x.index()]);
        }
    }
    if cs.node_wl.is_empty() {
        return 0;
    }

    let rn = &v.routines[r];
    let snapshot: Vec<(RegSet, RegSet)> = rn
        .entries()
        .iter()
        .map(|&x| match stratum {
            Stratum::Defs => (*v.may_def.get(x.index()), *v.must_def.get(x.index())),
            Stratum::Uses => (*v.may_use.get(x.index()), RegSet::EMPTY),
        })
        .collect();

    let mut visits = 0usize;
    'sweep: loop {
        while let Some(xi) = cs.node_wl.pop() {
            if v.pinned[xi] || v.out_edges[xi].is_empty() {
                continue;
            }
            visits += 1;

            // The per-stratum evaluation; `grown`/`lost` is the value delta,
            // used below to skip readers the change provably cannot move.
            let (grown, lost) = match stratum {
                Stratum::Defs => {
                    let mut may_def = RegSet::EMPTY;
                    let mut must_def = RegSet::EMPTY;
                    let mut first_edge = true;
                    for &e in &v.out_edges[xi] {
                        let edge = v.edges.get(e.index());
                        let yi = edge.to().index();
                        may_def |= edge.may_def() | *v.may_def.get(yi);
                        let md = edge.must_def() | *v.must_def.get(yi);
                        if first_edge {
                            must_def = md;
                            first_edge = false;
                        } else {
                            must_def &= md;
                        }
                    }
                    debug_assert!(
                        v.may_def.get(xi).is_subset(may_def)
                            && must_def.is_subset(*v.must_def.get(xi)),
                        "stratum A: MAY-DEF grows, MUST-DEF shrinks"
                    );
                    let delta = (may_def - *v.may_def.get(xi), *v.must_def.get(xi) - must_def);
                    *v.may_def.get_mut(xi) = may_def;
                    *v.must_def.get_mut(xi) = must_def;
                    delta
                }
                Stratum::Uses => {
                    let mut may_use = RegSet::EMPTY;
                    for &e in &v.out_edges[xi] {
                        let edge = v.edges.get(e.index());
                        may_use |=
                            edge.may_use() | (*v.may_use.get(edge.to().index()) - edge.must_def());
                    }
                    debug_assert!(
                        v.may_use.get(xi).is_subset(may_use),
                        "stratum B values must grow monotonically"
                    );
                    let delta = (may_use - *v.may_use.get(xi), RegSet::EMPTY);
                    *v.may_use.get_mut(xi) = may_use;
                    delta
                }
            };
            if grown.is_empty() && lost.is_empty() {
                continue;
            }

            for &e in &v.in_edges[xi] {
                let edge = v.edges.get(e.index());
                let f = edge.from().index();
                // Through edge `e` the reader sees `label | value` (defs) or
                // `label | (value - kill)` (uses): mask the delta down to
                // what survives the label, and skip the reader if its own
                // value already absorbs it.
                let moved = match stratum {
                    Stratum::Defs => {
                        !(grown - edge.may_def()).is_subset(*v.may_def.get(f))
                            || !((lost - edge.must_def()) & *v.must_def.get(f)).is_empty()
                    }
                    Stratum::Uses => {
                        !((grown - edge.must_def()) - edge.may_use()).is_subset(*v.may_use.get(f))
                    }
                };
                if moved {
                    cs.push_node(f, s.node_rank[f], s.node_rank[xi]);
                }
            }
            // Eager broadcast only into this routine itself (direct
            // recursion); every other call site is billed once, after the
            // routine settles.
            if matches!(v.nodes[xi], NodeKind::Entry { .. }) {
                for &e in &v.entry_cr_edges[xi] {
                    let owner = v.edges.get(e.index()).from().index();
                    if v.nodes[owner].routine().index() != r {
                        continue;
                    }
                    match stratum {
                        Stratum::Defs => {
                            let (g, l) = recompute_cr_defs_view(v, e);
                            if !g.is_subset(*v.may_def.get(owner))
                                || !(l & *v.must_def.get(owner)).is_empty()
                            {
                                cs.push_node(owner, s.node_rank[owner], s.node_rank[xi]);
                            }
                        }
                        Stratum::Uses => {
                            let g = recompute_cr_uses_view(v, e);
                            if !g.is_subset(*v.may_use.get(owner)) {
                                cs.push_node(owner, s.node_rank[owner], s.node_rank[xi]);
                            }
                        }
                    }
                }
            }
        }
        if !cs.flush_deferred_nodes(&s.node_rank) {
            break 'sweep;
        }
    }

    // Batched broadcast: bill each co-resident caller once per settled
    // entry change. Cross-component callers pull the converged values
    // when their own wave runs.
    for (k, &x) in rn.entries().iter().enumerate() {
        let xi = x.index();
        let now = match stratum {
            Stratum::Defs => (*v.may_def.get(xi), *v.must_def.get(xi)),
            Stratum::Uses => (*v.may_use.get(xi), RegSet::EMPTY),
        };
        if now == snapshot[k] {
            continue;
        }
        for &e in &v.entry_cr_edges[xi] {
            let owner = v.edges.get(e.index()).from().index();
            let or = v.nodes[owner].routine().index();
            if or != r && s.comp_of_routine[or] as usize == c {
                cs.push_routine(or, s.rrank1[or], s.rrank1[r]);
            }
        }
    }
    visits
}

/// Solves phase 2 for component `c` to its local fixpoint over a
/// routine-level worklist, callers first.
///
/// # Safety
/// As [`solve_comp_phase1`]: exclusive access to component `c`'s
/// liveness slots; everything read across the boundary is frozen.
unsafe fn solve_comp_phase2(
    v: &Phase2Views<'_>,
    s: &SccSchedule,
    c: usize,
    cs: &mut CompSolver,
) -> usize {
    let routines = &s.cond.sccs().components()[c];
    for &r in routines.iter() {
        cs.seeded[r.index()] = false;
        cs.routine_wl.push(r.index(), s.rrank2[r.index()]);
    }
    let mut visits = 0usize;
    loop {
        while let Some(ri) = cs.routine_wl.pop() {
            visits += solve_routine_phase2(v, s, c, ri, cs);
        }
        if cs.deferred_list.is_empty() {
            break;
        }
        let mut list = std::mem::take(&mut cs.deferred_list);
        for &r in &list {
            cs.deferred[r as usize] = false;
            cs.routine_wl.push(r as usize, s.rrank2[r as usize]);
        }
        list.clear();
        cs.deferred_list = list;
    }
    visits
}

/// Solves one routine of component `c` to its local phase-2 fixpoint:
/// pull the liveness its exits receive from return nodes anywhere —
/// converged earlier waves, co-resident callers, itself — iterate its
/// own nodes, then push the co-resident callee routines whose exits the
/// solve's settled return-liveness changes feed (the batched §3.3
/// broadcast). Seeding follows the phase-1 discipline: everything on
/// the first solve, only changed exits' readers on a re-solve.
///
/// # Safety
/// As [`solve_comp_phase2`].
unsafe fn solve_routine_phase2(
    v: &Phase2Views<'_>,
    s: &SccSchedule,
    c: usize,
    r: usize,
    cs: &mut CompSolver,
) -> usize {
    let first = !cs.seeded[r];
    cs.seeded[r] = true;
    let rn = &v.routines[r];
    for &x in rn.exits() {
        let xi = x.index();
        let mut grown = RegSet::EMPTY;
        if !s.exit_sources[xi].is_empty() {
            let mut merged = *v.live.get(xi);
            for &ret in &s.exit_sources[xi] {
                merged |= *v.live.get(ret.index());
            }
            grown = merged - *v.live.get(xi);
            if !grown.is_empty() {
                *v.live.get_mut(xi) = merged;
            }
        }
        // Under the warm (`MAY-USE` fixpoint) start everything but the
        // exits is already quiescent, so the first solve seeds only the
        // readers of whatever its exits hold — seeds plus pull — and a
        // re-solve only the readers of the pull's growth.
        let delta = if first { *v.live.get(xi) } else { grown };
        if delta.is_empty() {
            continue;
        }
        for &e in &v.in_edges[xi] {
            let edge = &v.edges[e.index()];
            let f = edge.from().index();
            if !((delta - edge.must_def()) - edge.may_use()).is_subset(*v.live.get(f)) {
                cs.node_wl.push(f, s.node_rank[f]);
            }
        }
    }
    if cs.node_wl.is_empty() {
        return 0;
    }

    let snapshot: Vec<RegSet> =
        rn.calls().iter().map(|&(_, _, ret)| *v.live.get(ret.index())).collect();

    let mut visits = 0usize;
    'sweep: loop {
        while let Some(xi) = cs.node_wl.pop() {
            if v.pinned[xi] || v.out_edges[xi].is_empty() {
                // Sinks (exits, halts, unknown jumps) are updated only by
                // seeds, pulls and broadcasts; nothing to evaluate.
                continue;
            }
            visits += 1;

            let mut live = *v.live.get(xi);
            for &e in &v.out_edges[xi] {
                let edge = &v.edges[e.index()];
                live |= edge.may_use() | (*v.live.get(edge.to().index()) - edge.must_def());
            }
            let grown = live - *v.live.get(xi);
            if grown.is_empty() {
                continue;
            }
            *v.live.get_mut(xi) = live;

            for &e in &v.in_edges[xi] {
                let edge = &v.edges[e.index()];
                let f = edge.from().index();
                // Skip readers whose liveness already absorbs what survives
                // the edge label.
                if !((grown - edge.must_def()) - edge.may_use()).is_subset(*v.live.get(f)) {
                    cs.push_node(f, s.node_rank[f], s.node_rank[xi]);
                }
            }
            // Eager broadcast only into this routine's own exits (direct
            // recursion); other callees are billed once, after the routine
            // settles.
            for &t in &v.return_exit_targets[xi] {
                let ti = t.index();
                if v.nodes[ti].routine().index() != r {
                    continue;
                }
                let egrown = grown - *v.live.get(ti);
                if !egrown.is_empty() {
                    *v.live.get_mut(ti) = *v.live.get(ti) | grown;
                    for &e in &v.in_edges[ti] {
                        let edge = &v.edges[e.index()];
                        let f = edge.from().index();
                        if !((egrown - edge.must_def()) - edge.may_use()).is_subset(*v.live.get(f))
                        {
                            cs.push_node(f, s.node_rank[f], s.node_rank[xi]);
                        }
                    }
                }
            }
        }
        if !cs.flush_deferred_nodes(&s.node_rank) {
            break 'sweep;
        }
    }

    // Batched broadcast: bill each co-resident callee once per settled
    // return-liveness change. Cross-component callees pull when their
    // own wave runs.
    for (k, &(_, _, ret)) in rn.calls().iter().enumerate() {
        if *v.live.get(ret.index()) == snapshot[k] {
            continue;
        }
        for &t in &v.return_exit_targets[ret.index()] {
            let tr = v.nodes[t.index()].routine().index();
            if tr != r && s.comp_of_routine[tr] as usize == c {
                cs.push_routine(tr, s.rrank2[tr], s.rrank2[r]);
            }
        }
    }
    visits
}

/// Recomputes a call-return edge's `MAY-DEF`/`MUST-DEF` from its source
/// entries; the shared-view twin of `dataflow::recompute_cr_defs`.
/// Returns the delta: the `MAY-DEF` bits the label gained and the
/// `MUST-DEF` bits it lost (both empty iff the label is unchanged).
///
/// # Safety
/// Exclusive access to edge `e`; no source entry's values may be
/// written concurrently.
unsafe fn recompute_cr_defs_view(v: &Phase1Views<'_>, e: EdgeId) -> (RegSet, RegSet) {
    let sources = &v.cr_sources[e.index()];
    debug_assert!(!sources.is_empty(), "only known-target edges are recomputed");
    let mut may_def = RegSet::EMPTY;
    let mut must_def = RegSet::EMPTY;
    let mut first = true;
    for &s in sources {
        let si = s.index();
        let csr = v.routines[v.nodes[si].routine().index()].saved_restored;
        may_def |= *v.may_def.get(si) - csr;
        let md = *v.must_def.get(si) - csr;
        if first {
            must_def = md;
            first = false;
        } else {
            must_def &= md;
        }
    }
    let edge = v.edges.get_mut(e.index());
    debug_assert_eq!(edge.kind(), EdgeKind::CallReturn);
    let delta = (may_def - edge.may_def, edge.must_def - must_def);
    edge.may_def = may_def;
    edge.must_def = must_def;
    delta
}

/// Recomputes a call-return edge's `MAY-USE` from its source entries;
/// the shared-view twin of `dataflow::recompute_cr_uses`. Returns the
/// bits the label gained (empty iff unchanged).
///
/// # Safety
/// As [`recompute_cr_defs_view`].
unsafe fn recompute_cr_uses_view(v: &Phase1Views<'_>, e: EdgeId) -> RegSet {
    let sources = &v.cr_sources[e.index()];
    debug_assert!(!sources.is_empty(), "only known-target edges are recomputed");
    let mut may_use = RegSet::EMPTY;
    for &s in sources {
        let si = s.index();
        let csr = v.routines[v.nodes[si].routine().index()].saved_restored;
        may_use |= *v.may_use.get(si) - csr;
    }
    let edge = v.edges.get_mut(e.index());
    debug_assert_eq!(edge.kind(), EdgeKind::CallReturn);
    let grown = may_use - edge.may_use;
    edge.may_use = may_use;
    grown
}
