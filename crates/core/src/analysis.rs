//! The analysis pipeline: CFG build → initialization → PSG build →
//! phase 1 → phase 2, with per-stage timing and memory accounting.

use std::time::{Duration, Instant};

use spike_cfg::{DomTree, LoopForest, ProgramCfg, RoutineCfg};
use spike_isa::{CallingStandard, CloneExact, HeapSize, Reg, RegSet};
use spike_program::{Program, RoutineId};

use crate::build::build_psg;
use crate::dataflow::{run_phase1, run_phase2};
use crate::parallel::{par_for_each_mut, par_map, resolve_threads};
use crate::psg::{NodeId, Psg};
use crate::schedule::{run_phase1_scheduled, run_phase2_scheduled, SccSchedule};
use crate::sparse::{run_phase1_sparse, run_phase2_sparse, SparseProgram};
use crate::stack::{analyze_stack, StackAnalysis};
use crate::summary::ProgramSummary;

/// How the two dataflow phases schedule their node evaluations. Both
/// schedulers converge to the *same* least fixpoint — summaries, PSG
/// and `memory_bytes` are bit-identical — they differ only in effort
/// (`phase1_visits`/`phase2_visits`) and wall-clock time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scheduler {
    /// The two-level engine (default): condense the call graph into
    /// SCCs, solve phase 1 bottom-up and phase 2 top-down in waves,
    /// each component under a dependency-ordered priority worklist,
    /// independent components of a wave in parallel. Converged
    /// components are never revisited.
    #[default]
    SccWave,
    /// Flat chaotic FIFO iteration over the whole PSG — the reference
    /// implementation the scheduled engine is measured against.
    Fifo,
}

/// Which value representation the SCC-wave engine's intra-routine solving
/// iterates over. Both converge to the same least fixpoint — summaries,
/// PSG, liveness and `memory_bytes` are bit-identical — they differ only
/// in effort (`phase1_visits`/`phase2_visits` count chain evaluations
/// under [`Representation::Sparse`]) and time.
///
/// The FIFO scheduler always solves dense, whatever this option says.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Representation {
    /// Contract pass-through def-use chains and iterate only the join
    /// anchors (the default): see [`crate::sparse`].
    #[default]
    Sparse,
    /// Iterate every PSG node's dense register sets — the oracle the
    /// sparse engine is checked against.
    Dense,
}

impl Representation {
    /// The lowercase flag/report spelling (`"sparse"` / `"dense"`).
    pub fn name(self) -> &'static str {
        match self {
            Representation::Sparse => "sparse",
            Representation::Dense => "dense",
        }
    }
}

/// Tuning knobs for the analysis, mirroring the paper's design choices.
#[derive(Clone, Debug)]
pub struct AnalysisOptions {
    /// Insert branch nodes at multiway branches (§3.6). Disabling this is
    /// the Table 4 ablation: the PSG grows up to 80% more edges.
    pub branch_nodes: bool,
    /// Filter saved-and-restored callee-saved registers out of routine
    /// summaries (§3.4).
    pub callee_saved_filter: bool,
    /// Register roles used for callee-saved filtering and unknown-target
    /// assumptions (§3.5).
    pub calling_standard: CallingStandard,
    /// Registers assumed live at the exits of externally callable routines
    /// (exported routines and the program entry), whose callers are
    /// outside the program.
    pub exported_live_at_exit: RegSet,
    /// Worker threads for the per-routine front-end stages (CFG build,
    /// `DEF`/`UBD` initialization, PSG build). `0` uses one worker per
    /// available hardware thread; `1` runs serially. Results — summaries,
    /// PSG node/edge order, and [`AnalysisStats::memory_bytes`] — are
    /// bit-identical at every setting.
    pub threads: usize,
    /// How the dataflow phases schedule node evaluations; see
    /// [`Scheduler`]. Results are bit-identical either way.
    pub scheduler: Scheduler,
    /// Whether the SCC-wave engine solves over sparse def-use chains or
    /// dense per-node sets; see [`Representation`]. Results are
    /// bit-identical either way.
    pub representation: Representation,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        let calling_standard = CallingStandard::alpha_nt();
        // An unseen caller may read the return values, expects callee-saved
        // registers preserved, and needs the stack and global pointers.
        let exported_live_at_exit = calling_standard.return_value()
            | calling_standard.callee_saved()
            | RegSet::of(&[Reg::SP, Reg::GP]);
        AnalysisOptions {
            branch_nodes: true,
            callee_saved_filter: true,
            calling_standard,
            exported_live_at_exit,
            threads: 0,
            scheduler: Scheduler::default(),
            representation: Representation::default(),
        }
    }
}

/// Loop-structure counts for one routine (or, aggregated with
/// [`Analysis::loop_stats`], a whole program): what the natural-loop
/// forest over the execution-graph dominator tree
/// ([`spike_cfg::LoopForest`]) found. These are the static weights the
/// profile-guided layer falls back to when no execution profile is
/// supplied — loop depth stands in for execution count.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LoopStats {
    /// Natural loops detected (back edges with a dominating header,
    /// merged per header).
    pub loops: usize,
    /// Loops overlapping an irreducible region; loop optimizations skip
    /// these.
    pub irreducible_loops: usize,
    /// Deepest loop nesting (0 = no loops).
    pub max_depth: u32,
    /// Basic blocks inside at least one loop.
    pub blocks_in_loops: usize,
}

impl LoopStats {
    /// Folds another routine's counts into an aggregate: counts add,
    /// depths max.
    pub fn absorb(&mut self, other: LoopStats) {
        self.loops += other.loops;
        self.irreducible_loops += other.irreducible_loops;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.blocks_in_loops += other.blocks_in_loops;
    }
}

/// Loop counts of one routine, from its execution-graph loop forest.
pub(crate) fn routine_loop_stats(cfg: &RoutineCfg) -> LoopStats {
    let dom = DomTree::dominators_linked(cfg);
    let forest = LoopForest::build(cfg, &dom);
    let blocks_in_loops = (0..cfg.blocks().len())
        .filter(|&b| forest.depth_of(spike_cfg::BlockId::from_index(b)) > 0)
        .count();
    LoopStats {
        loops: forest.loops().len(),
        irreducible_loops: forest.loops().iter().filter(|l| l.irreducible).count(),
        max_depth: forest.max_depth(),
        blocks_in_loops,
    }
}

/// Wall-clock time and effort per pipeline stage (Figure 13 of the paper)
/// plus the deterministic memory footprint (Table 2 / Figure 15).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalysisStats {
    /// Time building block structure for every routine (*CFG Build*).
    pub cfg_build: Duration,
    /// Time computing per-block `DEF`/`UBD` sets (*Initialization*).
    pub init: Duration,
    /// Time creating PSG nodes and labeling edges (*PSG Build*).
    pub psg_build: Duration,
    /// Time for the first dataflow phase.
    pub phase1: Duration,
    /// Time for the second dataflow phase.
    pub phase2: Duration,
    /// Time for the interprocedural stack-slot analysis (frame models,
    /// MOD/REF/KILL summaries, and both slot dataflows).
    pub stack_build: Duration,
    /// Node evaluations performed by phase 1 (chain evaluations under
    /// [`Representation::Sparse`]).
    pub phase1_visits: usize,
    /// Node evaluations performed by phase 2 (chain evaluations under
    /// [`Representation::Sparse`]).
    pub phase2_visits: usize,
    /// Block evaluations of the forward MUST-defined stack-slot solver.
    pub stack_forward_visits: usize,
    /// Block evaluations of the backward MAY-live stack-slot solver.
    pub stack_backward_visits: usize,
    /// The value representation the phases actually solved over
    /// ([`Representation::Dense`] under [`Scheduler::Fifo`]).
    pub representation: Representation,
    /// Worker threads the per-routine front-end stages (CFG build,
    /// `DEF`/`UBD` initialization, PSG build) ran with.
    pub front_end_workers: usize,
    /// Worker threads the scheduled dataflow phases ran with (clamped to
    /// the widest condensation wave; `1` under [`Scheduler::Fifo`]).
    pub phase_workers: usize,
    /// Condensation waves of the SCC-wave schedule — the sequential
    /// depth of the two-level solver (`0` under [`Scheduler::Fifo`]).
    pub waves: usize,
    /// Routines whose front-end structures (CFG, `DEF`/`UBD`, PSG plan)
    /// were rebuilt by this run. A from-scratch analysis rebuilds every
    /// routine; an incremental re-analysis rebuilds only the dirty ones.
    pub routines_reanalyzed: usize,
    /// Routines whose cached front-end structures were reused unchanged
    /// (always `0` for a from-scratch analysis).
    pub routines_reused: usize,
    /// Bytes of analysis structures (CFGs + PSG + summaries), counted
    /// deterministically via [`HeapSize`].
    pub memory_bytes: usize,
}

impl AnalysisStats {
    /// Total analysis time across all stages.
    pub fn total(&self) -> Duration {
        self.cfg_build + self.init + self.psg_build + self.phase1 + self.phase2 + self.stack_build
    }
}

/// The result of analyzing a program: the converged PSG, the extracted
/// summaries, the per-routine CFGs (retained for the optimizer), and the
/// stage statistics.
///
/// An `Analysis` is plain owned data — `Send + Sync` (checked below) and
/// `Clone` — so a long-running service can hold converged analyses in a
/// shared cache, hand them to worker threads, and fork one as the warm
/// starting point of an incremental re-analysis. Forks that feed
/// [`AnalysisCache::from_analysis`](crate::AnalysisCache::from_analysis)
/// must use [`CloneExact`] rather than `Clone`: a plain clone compacts
/// every Vec to its length, which silently changes
/// [`AnalysisStats::memory_bytes`] (a capacity count) and would break the
/// bit-identical-to-scratch contract of the incremental path.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The converged Program Summary Graph.
    pub psg: Psg,
    /// Per-routine summaries and call-site resolution.
    pub summary: ProgramSummary,
    /// The interprocedural stack-slot analysis (frame models, slot
    /// dataflows, and MOD/REF/KILL summaries).
    pub stack: StackAnalysis,
    /// The control-flow graphs the analysis was computed over.
    pub cfg: ProgramCfg,
    /// Per-routine loop-structure counts (indexed by routine id), from
    /// the execution-graph loop forest each routine's CFG induces.
    pub loops: Vec<LoopStats>,
    /// Stage timings, effort counters and memory footprint.
    pub stats: AnalysisStats,
}

impl Analysis {
    /// Whole-program aggregate of the per-routine loop counts.
    pub fn loop_stats(&self) -> LoopStats {
        let mut total = LoopStats::default();
        for &l in &self.loops {
            total.absorb(l);
        }
        total
    }
}

impl CloneExact for Analysis {
    fn clone_exact(&self) -> Analysis {
        Analysis {
            psg: self.psg.clone_exact(),
            summary: self.summary.clone_exact(),
            stack: self.stack.clone_exact(),
            cfg: self.cfg.clone_exact(),
            loops: self.loops.clone(),
            stats: self.stats,
        }
    }
}

// The cross-request cache in `spike-serve` shares analyses across worker
// threads; keep the thread-safety of the result types a compile-time fact.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Analysis>();
    assert_send_sync::<crate::AnalysisCache>();
};

/// Analyzes `program` with default options.
///
/// ```
/// use spike_isa::Reg;
/// use spike_program::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// b.routine("main").def(Reg::A0).call("id").put_int().halt();
/// b.routine("id").copy(Reg::A0, Reg::V0).ret();
/// let program = b.build()?;
///
/// let analysis = spike_core::analyze(&program);
/// let id = program.routine_by_name("id").unwrap();
/// let s = analysis.summary.routine(id);
/// assert!(s.call_used[0].contains(Reg::A0));
/// assert!(s.call_defined[0].contains(Reg::V0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze(program: &Program) -> Analysis {
    analyze_with(program, &AnalysisOptions::default())
}

/// Analyzes `program` with explicit [`AnalysisOptions`].
pub fn analyze_with(program: &Program, options: &AnalysisOptions) -> Analysis {
    let n_routines = program.routines().len();
    let workers = resolve_threads(options.threads).clamp(1, n_routines.max(1));

    let t = Instant::now();
    let mut cfgs: Vec<RoutineCfg> = par_map(n_routines, workers, |i| {
        RoutineCfg::build_structure(program, RoutineId::from_index(i))
    });
    let cfg_build = t.elapsed();

    let t = Instant::now();
    par_for_each_mut(&mut cfgs, workers, |c| c.init_def_ubd(program));
    let init = t.elapsed();
    let cfg = ProgramCfg::from_cfgs(cfgs);
    let loops: Vec<LoopStats> = par_map(n_routines, workers, |i| {
        routine_loop_stats(cfg.routine_cfg(RoutineId::from_index(i)))
    });

    let t = Instant::now();
    let mut psg = build_psg(program, &cfg, options, workers);
    let psg_build = t.elapsed();

    let t = Instant::now();
    let representation = match options.scheduler {
        Scheduler::SccWave => options.representation,
        Scheduler::Fifo => Representation::Dense,
    };
    let (phase1_visits, phase2_visits, waves, phase_workers, phase1, phase2) = match options
        .scheduler
    {
        Scheduler::SccWave => {
            // Schedule construction (call graph, condensation,
            // partition, ranks) is charged to phase 1, mirroring the
            // FIFO path's seed-order construction — and so is sparse
            // chain construction when it is selected.
            let schedule = SccSchedule::build(program, &cfg, &psg);
            let phase_workers =
                resolve_threads(options.threads).clamp(1, schedule.max_wave_width().max(1));
            match representation {
                Representation::Sparse => {
                    let sparse = SparseProgram::build(&psg, &schedule, &cfg);
                    let phase1_visits =
                        run_phase1_sparse(&mut psg, &schedule, &sparse, None, phase_workers);
                    let phase1 = t.elapsed();
                    let t = Instant::now();
                    let exit_seeds = exported_exit_seeds(program, &psg, options);
                    let phase2_visits = run_phase2_sparse(
                        &mut psg,
                        &schedule,
                        &sparse,
                        &exit_seeds,
                        None,
                        phase_workers,
                    );
                    (
                        phase1_visits,
                        phase2_visits,
                        schedule.waves(),
                        phase_workers,
                        phase1,
                        t.elapsed(),
                    )
                }
                Representation::Dense => {
                    let phase1_visits =
                        run_phase1_scheduled(&mut psg, &schedule, None, phase_workers);
                    let phase1 = t.elapsed();
                    let t = Instant::now();
                    let exit_seeds = exported_exit_seeds(program, &psg, options);
                    let phase2_visits =
                        run_phase2_scheduled(&mut psg, &schedule, &exit_seeds, None, phase_workers);
                    (
                        phase1_visits,
                        phase2_visits,
                        schedule.waves(),
                        phase_workers,
                        phase1,
                        t.elapsed(),
                    )
                }
            }
        }
        Scheduler::Fifo => {
            let seed_order = phase1_seed_order(program, &cfg, &psg);
            let phase1_visits = run_phase1(&mut psg, &seed_order);
            let phase1 = t.elapsed();
            let t = Instant::now();
            let exit_seeds = exported_exit_seeds(program, &psg, options);
            let phase2_visits = run_phase2(&mut psg, &exit_seeds);
            (phase1_visits, phase2_visits, 0, 1, phase1, t.elapsed())
        }
    };

    let summary = ProgramSummary::from_psg(&psg, options.calling_standard);

    let t = Instant::now();
    let (stack, stack_stats) = analyze_stack(program, &cfg);
    let stack_build = t.elapsed();

    let memory_bytes =
        cfg.heap_bytes() + psg.heap_bytes() + summary.heap_bytes() + stack.heap_bytes();

    // Debug builds cross-check every sparse solve against the dense
    // oracle: the converged PSG, the summaries and the deterministic
    // memory footprint must be bit-identical.
    #[cfg(debug_assertions)]
    if representation == Representation::Sparse {
        let dense = analyze_with(
            program,
            &AnalysisOptions { representation: Representation::Dense, ..options.clone() },
        );
        debug_assert!(psg == dense.psg, "sparse PSG diverged from the dense oracle");
        debug_assert!(summary == dense.summary, "sparse summaries diverged from the dense oracle");
        debug_assert_eq!(
            memory_bytes, dense.stats.memory_bytes,
            "sparse memory footprint diverged from the dense oracle"
        );
    }

    Analysis {
        psg,
        summary,
        stack,
        cfg,
        loops,
        stats: AnalysisStats {
            cfg_build,
            init,
            psg_build,
            phase1,
            phase2,
            stack_build,
            phase1_visits,
            phase2_visits,
            stack_forward_visits: stack_stats.forward_visits,
            stack_backward_visits: stack_stats.backward_visits,
            representation,
            front_end_workers: workers,
            phase_workers,
            waves,
            routines_reanalyzed: n_routines,
            routines_reused: 0,
            memory_bytes,
        },
    }
}

/// The phase-1 worklist seed order: routines bottom-up in call-graph SCC
/// order (callees before callers), and within a routine the nodes in
/// reverse creation order (sinks before the entry). Most call-return
/// edges then carry their final callee summary the first time their call
/// node is evaluated.
pub(crate) fn phase1_seed_order(program: &Program, cfg: &ProgramCfg, psg: &Psg) -> Vec<NodeId> {
    let callgraph = spike_callgraph::CallGraph::build(program, cfg);
    let sccs = callgraph.sccs();
    let mut order = Vec::with_capacity(psg.nodes().len());
    for component in sccs.bottom_up() {
        for &rid in component {
            let rn = psg.routine_nodes(rid);
            let mut nodes: Vec<NodeId> = rn
                .entries()
                .iter()
                .chain(rn.exits())
                .copied()
                .chain(rn.calls().iter().flat_map(|&(_, c, r)| [c, r]))
                .chain(rn.branches().iter().map(|&(_, n)| n))
                .collect();
            nodes.sort_unstable();
            nodes.reverse();
            order.extend(nodes);
        }
    }
    // Halt/unknown-jump/diverge sinks are pinned and never evaluated, but
    // the worklist seed must still cover every node.
    for i in 0..psg.nodes().len() {
        let n = NodeId::from_index(i);
        if psg.pinned[i] {
            order.push(n);
        }
    }
    debug_assert_eq!(order.len(), psg.nodes().len());
    order
}

/// Liveness seeds for the exits of routines callable from outside the
/// program: exported routines and the program entry routine.
pub(crate) fn exported_exit_seeds(
    program: &Program,
    psg: &Psg,
    options: &AnalysisOptions,
) -> Vec<(NodeId, RegSet)> {
    let mut seeds = Vec::new();
    for (id, r) in program.iter() {
        if r.exported() || id == program.entry() {
            for &exit in psg.routine_nodes(id).exits() {
                seeds.push((exit, options.exported_live_at_exit));
            }
        }
    }
    seeds
}
