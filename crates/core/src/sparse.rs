//! The sparse def-use chain representation for the dataflow phases.
//!
//! The dense engines ([`crate::dataflow`], [`crate::schedule`]) keep a
//! register set per PSG node and re-evaluate a node's full transfer
//! function whenever any input may have moved. But most PSG nodes are
//! *pass-through*: a single flow-summary out-edge with a static label,
//! so the node's value is a closed-form function of one downstream
//! node — `use = l.use ∪ (use(y) − l.must)`, `may = l.may ∪ may(y)`,
//! `must = l.must ∪ must(y)` for every lattice the phases solve.
//! Iterating such nodes moves no information of its own; it just relays
//! its anchor's bits one hop per visit.
//!
//! This module contracts those chains away, in the spirit of
//! "Parameterized Construction of Program Representations for Sparse
//! Dataflow Analyses" (Tavares et al.): *join points* — the places an
//! analysis must materialize a value — are kept as **anchors**, and
//! every run between them is composed into one [`ChainEdge`] carrying
//! the pre-multiplied static label. Chains end at a **dynamic point**:
//! an anchor, or a contracted *call* node. Calls contract too — a
//! call's stored chain label is only the static suffix *below* its
//! call-return edge, and evaluation re-reads that edge's live label
//! (rewritten by phase 1 as callee summaries converge) on every chain
//! walk, so a chain is an alternating sequence of static segments and
//! live call hops. A node stays an anchor exactly when its value
//! genuinely joins or originates information:
//!
//! * a fork (out-degree ≥ 2) whose branches reach *different* dynamic
//!   points — when they all reconverge at one point the per-edge views
//!   distribute over the shared downstream value and the fork contracts
//!   under the exact label join (∪ for the `MAY`/live lattices, ∩ for
//!   `MUST-DEF`),
//! * a pinned boundary (halt / unknown-jump / diverge sinks),
//! * a sink with no out-edges (exits), or
//! * the source of a back edge — the target of one of its out-edges
//!   does not rank below it in the routine's feedback-arc order, so
//!   contracting it would make the chain graph cyclic.
//!
//! The contraction criterion is a *postdominance* fact — every
//! terminating path from a contracted node's program point reaches its
//! chain target's block — and debug builds validate exactly that
//! against the [`spike_cfg::DomTree`] postdominator trees.
//!
//! The phases then run **chain propagation inside the unchanged
//! SCC-wave schedule**: same condensation waves, same pull-model
//! cross-routine refresh and settled-boundary broadcasts as
//! [`crate::schedule`], but the intra-routine worklists hold only
//! anchors, each visit evaluating all phase-1 lattices fused over the
//! composed chain edges. Values of contracted nodes are read *on
//! demand* through their chain label (so entries and returns may be
//! contracted even though broadcasts read them) and written back once
//! at the end — the uncounted materialization sweep — so the final
//! PSG, summaries, liveness slices and `memory_bytes` are bit-identical
//! to the dense engines.
//!
//! Chains are per-routine (every PSG edge is intra-routine), so the
//! incremental path ([`crate::incremental`]) rebuilds only the dirty
//! routines' chains and reuses the rest, mirroring its CFG/PSG plan
//! reuse.

use spike_cfg::ProgramCfg;
use spike_isa::{CloneExact, HeapSize, RegSet};
use spike_program::RoutineId;

use crate::dataflow::phase2_init_value;
use crate::parallel::SharedMut;
use crate::psg::{Edge, EdgeId, EdgeKind, NodeId, NodeKind, Psg, RoutineNodes};
use crate::schedule::{init_phase1_values, run_waves, CompSolver, SccSchedule};

/// A composed static transfer label: the product of the flow-summary
/// labels along a contracted chain. Crossing the label maps a
/// downstream value `v` to `use ∪ (v.use − must)`, `may ∪ v.may`,
/// `must ∪ v.must` — the same shape as a single Figure-6 edge label,
/// closed under composition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ChainLabel {
    may_use: RegSet,
    may_def: RegSet,
    must_def: RegSet,
}

impl ChainLabel {
    const IDENTITY: ChainLabel =
        ChainLabel { may_use: RegSet::EMPTY, may_def: RegSet::EMPTY, must_def: RegSet::EMPTY };

    /// Composes `self` (the hop nearer the reader) with `rest` (the
    /// already-composed suffix below it): crossing the result equals
    /// crossing `self` after `rest`.
    fn then(self, rest: ChainLabel) -> ChainLabel {
        ChainLabel {
            may_use: self.may_use | (rest.may_use - self.must_def),
            may_def: self.may_def | rest.may_def,
            must_def: self.must_def | rest.must_def,
        }
    }

    fn of(edge: &Edge) -> ChainLabel {
        ChainLabel { may_use: edge.may_use(), may_def: edge.may_def(), must_def: edge.must_def() }
    }

    /// The join of two parallel labels reaching the *same* anchor:
    /// crossing the result equals joining the two crossings, because
    /// each per-edge view distributes over the shared downstream value —
    /// `∪ₑ (useₑ ∪ (v − mustₑ)) = (∪ₑ useₑ) ∪ (v − ∩ₑ mustₑ)`, and
    /// likewise for the may/must lattices. This is what lets a fork
    /// whose branches reconverge at one join anchor contract.
    fn join(self, other: ChainLabel) -> ChainLabel {
        ChainLabel {
            may_use: self.may_use | other.may_use,
            may_def: self.may_def | other.may_def,
            must_def: self.must_def & other.must_def,
        }
    }
}

/// One composed out-edge of an anchor: the underlying PSG edge (whose
/// label is read live at evaluation time — call-return labels change
/// during phase 1) plus the static suffix from the edge's target down
/// to the dynamic point `to` it chains to (identity when the target is
/// itself a dynamic point).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ChainEdge {
    edge: EdgeId,
    to: NodeId,
    suffix: ChainLabel,
}

/// Sentinel slot marking an `in_chains` entry whose reader is a
/// contracted call rather than an anchor's chain edge.
const CALL_READER: u32 = u32::MAX;

/// The sparse program: per-node contraction chains and the composed
/// anchor-to-anchor edges the phase solvers walk. Built per analysis
/// from the PSG and its [`SccSchedule`]; cached across incremental
/// re-analyses with per-routine rebuilds.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct SparseProgram {
    /// Per node: the next dynamic point its chain leads to (an anchor
    /// or a contracted call), or `u32::MAX` when the node is itself an
    /// anchor. For a contracted call this names the point *below* its
    /// call-return edge — the live edge label is crossed separately at
    /// walk time.
    chain_to: Vec<u32>,
    /// Per node: the composed static label down to `chain_to`
    /// (identity for anchors; the suffix below the call-return edge
    /// for contracted calls).
    chain_label: Vec<ChainLabel>,
    /// Per node: composed out-edges to anchors. Empty for contracted
    /// nodes and for sinks.
    out_chains: Vec<Vec<ChainEdge>>,
    /// Per node: the readers of its value, as (reader, index into the
    /// reader's `out_chains`) pairs for anchors reading it through a
    /// chain edge, or [`CALL_READER`] when the reader is a contracted
    /// call chaining to it — the walk continues through that call's
    /// live label to *its* readers.
    in_chains: Vec<Vec<(NodeId, u32)>>,
    /// Per routine: its contracted nodes, ascending by node rank — the
    /// materialization order (a chain target materializes before its
    /// readers).
    interior: Vec<Vec<NodeId>>,
    /// Per routine: its anchors, ascending by node rank — the node
    /// worklist seed set.
    anchors: Vec<Vec<NodeId>>,
}

impl SparseProgram {
    /// Builds the chains for every routine of `psg`. `cfg` is consulted
    /// only by debug builds, which check each contraction against the
    /// routine's postdominator tree.
    pub(crate) fn build(psg: &Psg, schedule: &SccSchedule, cfg: &ProgramCfg) -> SparseProgram {
        let n = psg.nodes().len();
        let n_routines = psg.routines.len();
        let mut sp = SparseProgram {
            chain_to: vec![u32::MAX; n],
            chain_label: vec![ChainLabel::IDENTITY; n],
            out_chains: vec![Vec::new(); n],
            in_chains: vec![Vec::new(); n],
            interior: vec![Vec::new(); n_routines],
            anchors: vec![Vec::new(); n_routines],
        };
        for r in 0..n_routines {
            sp.build_routine(psg, schedule, r);
        }
        #[cfg(debug_assertions)]
        sp.validate_contractions(psg, cfg);
        #[cfg(not(debug_assertions))]
        let _ = cfg;
        sp
    }

    /// Rebuilds the chains of exactly the `dirty` routines in place,
    /// leaving every other routine's chains untouched. Sound because
    /// chains are strictly intra-routine and the incremental front end
    /// guarantees a dirty routine keeps its node/edge *shape* (ids,
    /// kinds, targets) — only its flow labels, and hence the composed
    /// chain labels, change.
    pub(crate) fn rebuild_routines(
        &mut self,
        psg: &Psg,
        schedule: &SccSchedule,
        dirty: &[RoutineId],
    ) {
        for &r in dirty {
            let ri = r.index();
            for &x in &schedule.routine_nodes[ri] {
                let xi = x.index();
                self.chain_to[xi] = u32::MAX;
                self.chain_label[xi] = ChainLabel::IDENTITY;
                self.out_chains[xi].clear();
                self.in_chains[xi].clear();
            }
            self.interior[ri].clear();
            self.anchors[ri].clear();
            self.build_routine(psg, schedule, ri);
        }
    }

    /// Whether the chains still describe `psg`'s node universe — the
    /// cheap structural guard the incremental path checks before
    /// reusing a cached instance.
    pub(crate) fn covers(&self, psg: &Psg) -> bool {
        self.chain_to.len() == psg.nodes().len() && self.interior.len() == psg.routines.len()
    }

    /// Resolves an edge target to the chain's next *dynamic point* — an
    /// anchor or a contracted call, the places a value must be read or
    /// a live label crossed — plus the static label from the target
    /// down to it. The pass-1 sweep runs ascending rank, so every
    /// lower-rank target is already resolved when it is consulted.
    fn resolve(&self, psg: &Psg, yi: usize) -> (u32, ChainLabel) {
        if self.chain_to[yi] == u32::MAX || matches!(psg.nodes[yi], NodeKind::Call { .. }) {
            (yi as u32, ChainLabel::IDENTITY)
        } else {
            (self.chain_to[yi], self.chain_label[yi])
        }
    }

    fn build_routine(&mut self, psg: &Psg, schedule: &SccSchedule, r: usize) {
        // Pass 1, ascending rank: decide contraction and compose each
        // contracted node's static label down to the next dynamic
        // point. A node contracts when *every* out-edge chains —
        // through already-resolved lower-rank targets — to one common
        // dynamic point: a pass-through node trivially (one edge), a
        // fork whose branches reconverge before the next join anchor
        // via [`ChainLabel::join`], and a call through its single
        // call-return edge, whose live label is *not* composed — it is
        // read at evaluation time, only the static suffix below it is
        // stored. Sinks, pinned nodes, back-edge sources and forks
        // whose branches reach distinct points stay anchors — exactly
        // the join points the solver must iterate.
        for &x in &schedule.routine_nodes[r] {
            let xi = x.index();
            let rank_ok =
                |edge: &Edge| schedule.node_rank[edge.to().index()] < schedule.node_rank[xi];
            let mut contraction: Option<(u32, ChainLabel)> = None;
            if !psg.pinned[xi] && !psg.out_edges[xi].is_empty() {
                if matches!(psg.nodes[xi], NodeKind::Call { .. }) {
                    let edge = &psg.edges[psg.out_edges[xi][0].index()];
                    if edge.kind() == EdgeKind::CallReturn && rank_ok(edge) {
                        contraction = Some(self.resolve(psg, edge.to().index()));
                    }
                } else if psg.out_edges[xi].iter().all(|&e| {
                    let edge = &psg.edges[e.index()];
                    edge.kind() == EdgeKind::FlowSummary && rank_ok(edge)
                }) {
                    for &e in &psg.out_edges[xi] {
                        let edge = &psg.edges[e.index()];
                        let (point, sfx) = self.resolve(psg, edge.to().index());
                        let label = ChainLabel::of(edge).then(sfx);
                        contraction = match contraction {
                            None => Some((point, label)),
                            Some((p0, l0)) if p0 == point => Some((p0, l0.join(label))),
                            Some(_) => None,
                        };
                        if contraction.is_none() {
                            break;
                        }
                    }
                }
            }
            match contraction {
                Some((point, label)) => {
                    self.chain_to[xi] = point;
                    self.chain_label[xi] = label;
                    self.interior[r].push(x);
                }
                None => self.anchors[r].push(x),
            }
        }
        // Pass 2: the anchors' composed out-edges and their inverses,
        // plus the up-links from every contracted call to its own next
        // dynamic point — the path a delta walks when it crosses the
        // call's live label on its way to the anchors above.
        for k in 0..self.anchors[r].len() {
            let x = self.anchors[r][k];
            let xi = x.index();
            for &e in &psg.out_edges[xi] {
                let edge = &psg.edges[e.index()];
                let (to, suffix) = self.resolve(psg, edge.to().index());
                let slot = self.out_chains[xi].len() as u32;
                let to = NodeId::from_index(to as usize);
                self.out_chains[xi].push(ChainEdge { edge: e, to, suffix });
                self.in_chains[to.index()].push((x, slot));
            }
        }
        for k in 0..self.interior[r].len() {
            let x = self.interior[r][k];
            let xi = x.index();
            if matches!(psg.nodes[xi], NodeKind::Call { .. }) {
                self.in_chains[self.chain_to[xi] as usize].push((x, CALL_READER));
            }
        }
    }

    /// Debug-only: every contraction is a postdominance fact. A node
    /// chains into its single flow target only if all terminating paths
    /// from the node's program point reach the target's block, i.e. the
    /// target's block postdominates the source's — checked against
    /// [`spike_cfg::DomTree::postdominators`] per routine.
    #[cfg(debug_assertions)]
    fn validate_contractions(&self, psg: &Psg, cfg: &ProgramCfg) {
        use spike_cfg::{BlockId, DomTree, TermKind};

        for (r, interior) in self.interior.iter().enumerate() {
            if interior.is_empty() {
                continue;
            }
            let rid = RoutineId::from_index(r);
            let rcfg = cfg.routine_cfg(rid);
            let pdom = DomTree::postdominators(rcfg);
            let source_block = |kind: NodeKind| -> Option<BlockId> {
                match kind {
                    NodeKind::Entry { index, .. } => Some(rcfg.entries()[index]),
                    NodeKind::Return { block, .. } => match rcfg.block(block).term() {
                        TermKind::Call { return_to, .. } => *return_to,
                        _ => None,
                    },
                    NodeKind::Branch { block, .. } => Some(block),
                    _ => None,
                }
            };
            let target_block = |kind: NodeKind| -> Option<BlockId> {
                match kind {
                    NodeKind::Exit { index, .. } => Some(rcfg.exits()[index]),
                    NodeKind::Call { block, .. }
                    | NodeKind::Branch { block, .. }
                    | NodeKind::Halt { block, .. }
                    | NodeKind::UnknownJump { block, .. } => Some(block),
                    _ => None,
                }
            };
            for &x in interior {
                let xi = x.index();
                // The claim is about the chain's next *dynamic point*:
                // every flow path from the node reaches it (a fork's
                // individual hops need not postdominate — only the
                // reconvergence point they merge at does).
                let anchor = self.chain_to[xi] as usize;
                let (Some(src), Some(dst)) =
                    (source_block(psg.nodes[xi]), target_block(psg.nodes[anchor]))
                else {
                    continue; // diverge sinks and non-returning calls
                };
                if pdom.is_reachable(src) {
                    debug_assert!(
                        pdom.dominates(dst, src),
                        "contracted chain {:?} -> {:?} in routine {r} is not a postdominance \
                         fact ({src:?} -> {dst:?})",
                        psg.nodes[xi],
                        psg.nodes[anchor],
                    );
                }
            }
        }
    }
}

impl HeapSize for ChainLabel {
    fn heap_bytes(&self) -> usize {
        0
    }
}

impl HeapSize for ChainEdge {
    fn heap_bytes(&self) -> usize {
        0
    }
}

impl CloneExact for ChainLabel {
    fn clone_exact(&self) -> ChainLabel {
        *self
    }
}

impl CloneExact for ChainEdge {
    fn clone_exact(&self) -> ChainEdge {
        *self
    }
}

impl HeapSize for SparseProgram {
    fn heap_bytes(&self) -> usize {
        self.chain_to.heap_bytes()
            + self.chain_label.heap_bytes()
            + self.out_chains.heap_bytes()
            + self.in_chains.heap_bytes()
            + self.interior.heap_bytes()
            + self.anchors.heap_bytes()
    }
}

impl CloneExact for SparseProgram {
    fn clone_exact(&self) -> SparseProgram {
        SparseProgram {
            chain_to: self.chain_to.clone_exact(),
            chain_label: self.chain_label.clone_exact(),
            out_chains: self.out_chains.clone_exact(),
            in_chains: self.in_chains.clone_exact(),
            interior: self.interior.clone_exact(),
            anchors: self.anchors.clone_exact(),
        }
    }
}

/// Shared views for the sparse phase-1 wave solvers — the chain twin of
/// `schedule::Phase1Views`, with the same `SharedMut` partition
/// discipline.
struct Sparse1Views<'a> {
    nodes: &'a [NodeKind],
    routines: &'a [RoutineNodes],
    cr_sources: &'a [Vec<NodeId>],
    entry_cr_edges: &'a [Vec<EdgeId>],
    out_edges: &'a [Vec<EdgeId>],
    pinned: &'a [bool],
    edges: SharedMut<'a, Edge>,
    may_use: SharedMut<'a, RegSet>,
    may_def: SharedMut<'a, RegSet>,
    must_def: SharedMut<'a, RegSet>,
    sp: &'a SparseProgram,
}

/// Shared views for the sparse phase-2 wave solvers.
struct Sparse2Views<'a> {
    nodes: &'a [NodeKind],
    routines: &'a [RoutineNodes],
    return_exit_targets: &'a [Vec<NodeId>],
    out_edges: &'a [Vec<EdgeId>],
    pinned: &'a [bool],
    edges: &'a [Edge],
    live: SharedMut<'a, RegSet>,
    sp: &'a SparseProgram,
}

/// The phase-1 value of any node, contracted or not: anchors read their
/// stored sets, contracted nodes compose the chain down to their final
/// anchor — static segment labels as stored, and each contracted call's
/// live call-return label read as the walk crosses it. Broadcast pulls
/// (call-return sources) go through this, which is what lets entries be
/// contracted.
///
/// # Safety
/// No thread may be concurrently writing the value slots or edge labels
/// of any node along the chain (all intra-routine, so the component
/// ownership discipline covers them).
unsafe fn p1_value(v: &Sparse1Views<'_>, xi: usize) -> (RegSet, RegSet, RegSet) {
    let mut acc = ChainLabel::IDENTITY;
    let mut i = xi;
    loop {
        if v.sp.chain_to[i] == u32::MAX {
            return (
                acc.may_use | (*v.may_use.get(i) - acc.must_def),
                acc.may_def | *v.may_def.get(i),
                acc.must_def | *v.must_def.get(i),
            );
        }
        if matches!(v.nodes[i], NodeKind::Call { .. }) {
            acc = acc.then(ChainLabel::of(v.edges.get(v.out_edges[i][0].index())));
        }
        acc = acc.then(v.sp.chain_label[i]);
        i = v.sp.chain_to[i] as usize;
    }
}

/// The phase-2 liveness of any node, through its chain if contracted —
/// the exit pulls read return-node liveness this way. Call-return
/// labels are frozen by phase 1, so the crossed labels are all
/// effectively static here.
///
/// # Safety
/// As [`p1_value`].
unsafe fn p2_value(v: &Sparse2Views<'_>, xi: usize) -> RegSet {
    let mut acc = ChainLabel::IDENTITY;
    let mut i = xi;
    loop {
        if v.sp.chain_to[i] == u32::MAX {
            return acc.may_use | (*v.live.get(i) - acc.must_def);
        }
        if matches!(v.nodes[i], NodeKind::Call { .. }) {
            acc = acc.then(ChainLabel::of(&v.edges[v.out_edges[i][0].index()]));
        }
        acc = acc.then(v.sp.chain_label[i]);
        i = v.sp.chain_to[i] as usize;
    }
}

/// Sparse phase 1: the same bottom-up waves and pull-model refresh as
/// [`crate::schedule::run_phase1_scheduled`], with intra-routine solving
/// walking composed chain edges — one *fused* evaluation of all three
/// lattices per anchor visit — and a final uncounted materialization
/// writing every contracted node's dense value back. Bit-identical to
/// the dense engines; returns the number of chain (anchor) evaluations.
pub(crate) fn run_phase1_sparse(
    psg: &mut Psg,
    schedule: &SccSchedule,
    sp: &SparseProgram,
    reset: Option<&[bool]>,
    workers: usize,
) -> usize {
    let n = psg.nodes().len();
    debug_assert!(reset.is_none_or(|m| m.len() == n), "reset mask must cover every node");
    // The dense init + spanning-tree warm seed is reused unchanged:
    // anchor seeds are what the fused evaluation grows from, and
    // contracted nodes' seeded values are simply dead until the
    // materialization sweep overwrites them.
    init_phase1_values(psg, schedule, reset);
    // A seeded run must also re-initialize the recomputable call-return
    // labels of reset routines. The dense engine can keep them stale —
    // it only ever reads a label after the owning routine's pull has
    // recomputed it from stored entry values — but the sparse on-demand
    // reads cross *other* routines' labels transitively (a contracted
    // entry's value walks its own routine's calls), and a stale label
    // from the previous fixpoint can over-approximate the new one.
    // From the build-time bottom `(∅, ∅, ALL)` every transitive read
    // under-approximates, exactly as in a cold solve.
    if let Some(m) = reset {
        for cr_edges in &schedule.routine_cr_edges {
            for &e in cr_edges {
                let edge = &mut psg.edges[e.index()];
                if m[edge.from().index()] {
                    edge.may_use = RegSet::EMPTY;
                    edge.may_def = RegSet::EMPTY;
                    edge.must_def = RegSet::ALL;
                }
            }
        }
    }
    let active = schedule.active_components(reset);

    let visits;
    {
        let Psg {
            ref nodes,
            ref mut edges,
            ref routines,
            ref cr_sources,
            ref entry_cr_edges,
            ref out_edges,
            ref pinned,
            ref mut may_use,
            ref mut may_def,
            ref mut must_def,
            ..
        } = *psg;
        let views = Sparse1Views {
            nodes,
            routines,
            cr_sources,
            entry_cr_edges,
            out_edges,
            pinned,
            edges: SharedMut::new(edges),
            may_use: SharedMut::new(may_use),
            may_def: SharedMut::new(may_def),
            must_def: SharedMut::new(must_def),
            sp,
        };
        visits =
            run_waves(schedule.cond.waves_bottom_up(), &active, workers, schedule, n, |cs, c| {
                // SAFETY: as in the dense engine — one worker per
                // in-flight component, writes confined to the
                // component's own values and its routines' edge labels;
                // chain reads of foreign values only touch converged
                // earlier waves.
                unsafe { solve_comp_sparse1(&views, schedule, c, cs) }
            });
    }

    // Materialize the contracted nodes' dense values through their
    // chain label and next dynamic point — the same closed form the
    // on-demand views read, so one assignment per node reproduces the
    // dense fixpoint exactly. Interior lists ascend by rank and chains
    // descend, so a contracted call's own value is in place before any
    // node chaining through it materializes. Not counted as visits: no
    // information moves, this is a change of representation.
    for interior in &sp.interior {
        for &x in interior {
            let xi = x.index();
            if reset.is_some_and(|m| !m[xi]) {
                continue;
            }
            let mut l = sp.chain_label[xi];
            if matches!(psg.nodes[xi], NodeKind::Call { .. }) {
                l = ChainLabel::of(&psg.edges[psg.out_edges[xi][0].index()]).then(l);
            }
            let yi = sp.chain_to[xi] as usize;
            psg.may_def[xi] = l.may_def | psg.may_def[yi];
            psg.must_def[xi] = l.must_def | psg.must_def[yi];
            psg.may_use[xi] = l.may_use | (psg.may_use[yi] - l.must_def);
        }
    }
    visits
}

/// Sparse phase 2: top-down waves, chain propagation, on-demand
/// return-liveness reads, then the uncounted materialization. The same
/// warm `MAY-USE` start and exit-seed contract as the dense engine.
pub(crate) fn run_phase2_sparse(
    psg: &mut Psg,
    schedule: &SccSchedule,
    sp: &SparseProgram,
    exit_seeds: &[(NodeId, RegSet)],
    reset: Option<&[bool]>,
    workers: usize,
) -> usize {
    let n = psg.nodes().len();
    debug_assert!(reset.is_none_or(|m| m.len() == n), "reset mask must cover every node");
    for i in 0..n {
        if reset.is_none_or(|m| m[i]) {
            psg.live[i] = phase2_init_value(psg.nodes[i], psg.uj_live[i]) | psg.may_use[i];
        }
    }
    // Exit seeds land on exit nodes, which are sinks and therefore
    // always anchors.
    for &(node, set) in exit_seeds {
        psg.live[node.index()] |= set;
    }
    let active = schedule.active_components(reset);

    let visits;
    {
        let Psg {
            ref nodes,
            ref edges,
            ref routines,
            ref return_exit_targets,
            ref out_edges,
            ref pinned,
            ref mut live,
            ..
        } = *psg;
        let views = Sparse2Views {
            nodes,
            routines,
            return_exit_targets,
            out_edges,
            pinned,
            edges,
            live: SharedMut::new(live),
            sp,
        };
        visits =
            run_waves(schedule.cond.waves_top_down(), &active, workers, schedule, n, |cs, c| {
                // SAFETY: as in phase 1.
                unsafe { solve_comp_sparse2(&views, schedule, c, cs) }
            });
    }

    // Materialization through the chain label and next dynamic point,
    // as in phase 1. Exact because a contracted node's phase-2 init
    // (`may_use`, never a pinned or seeded set) is contained in its
    // transfer value, so the accumulate-evaluation degenerates to the
    // same overwrite this sweep performs — for a contracted call,
    // `may_use = cr.use ∪ (may_use(ret) − cr.must)` is contained in
    // `cr.use ∪ (live(ret) − cr.must)` since `live ⊇ may_use` at every
    // node.
    for interior in &sp.interior {
        for &x in interior {
            let xi = x.index();
            if reset.is_some_and(|m| !m[xi]) {
                continue;
            }
            let mut l = sp.chain_label[xi];
            if matches!(psg.nodes[xi], NodeKind::Call { .. }) {
                l = ChainLabel::of(&psg.edges[psg.out_edges[xi][0].index()]).then(l);
            }
            let yi = sp.chain_to[xi] as usize;
            psg.live[xi] = l.may_use | (psg.live[yi] - l.must_def);
        }
    }
    visits
}

/// Solves phase 1 for component `c` over anchors only. Unlike the dense
/// engine's two strata, the sparse solver evaluates all three lattices
/// *fused* per visit: every transfer is monotone over the product
/// lattice (`MAY` sets grow, `MUST-DEF` shrinks, and a shrinking kill
/// set only grows `MAY-USE`), so chaotic fused iteration reaches the
/// same unique least fixpoint the stratified engine does.
///
/// # Safety
/// As `schedule::solve_comp_phase1`: exclusive access to component
/// `c`'s values and its routines' edge labels; cross-boundary reads
/// only touch converged components.
unsafe fn solve_comp_sparse1(
    v: &Sparse1Views<'_>,
    s: &SccSchedule,
    c: usize,
    cs: &mut CompSolver,
) -> usize {
    let routines = &s.cond.sccs().components()[c];
    for &r in routines.iter() {
        cs.seeded[r.index()] = false;
        cs.routine_wl.push(r.index(), s.rrank1[r.index()]);
    }
    let mut visits = 0usize;
    loop {
        while let Some(ri) = cs.routine_wl.pop() {
            visits += solve_routine_sparse1(v, s, c, ri, cs);
        }
        if cs.deferred_list.is_empty() {
            break;
        }
        let mut list = std::mem::take(&mut cs.deferred_list);
        for &r in &list {
            cs.deferred[r as usize] = false;
            cs.routine_wl.push(r as usize, s.rrank1[r as usize]);
        }
        list.clear();
        cs.deferred_list = list;
    }
    visits
}

/// Routes a phase-1 value delta `(grown MAY-USE, grown MAY-DEF, lost
/// MUST-DEF)` at dynamic point `from` to the anchors that must
/// re-evaluate: anchor readers get the masked absorption check against
/// their stored values, and contracted-call readers cross their static
/// suffix and live call-return label and recurse to *their* readers.
/// Up-links strictly ascend the rank order, so the walk terminates.
/// `defer` selects the sweep's loop-carried parking
/// ([`CompSolver::push_node`]); pre-sweep pulls push directly.
///
/// # Safety
/// As [`solve_routine_sparse1`] — the walk stays inside the owning
/// component's routines.
unsafe fn propagate_p1(
    v: &Sparse1Views<'_>,
    s: &SccSchedule,
    cs: &mut CompSolver,
    from: usize,
    (gmu, gmd, lmd): (RegSet, RegSet, RegSet),
    defer: bool,
) {
    for &(f, slot) in &v.sp.in_chains[from] {
        let fi = f.index();
        if slot == CALL_READER {
            let sx = &v.sp.chain_label[fi];
            let lc = ChainLabel::of(v.edges.get(v.out_edges[fi][0].index()));
            let g1 = (((gmu - sx.must_def) - sx.may_use) - lc.must_def) - lc.may_use;
            let g2 = (gmd - sx.may_def) - lc.may_def;
            let l1 = (lmd - sx.must_def) - lc.must_def;
            if !(g1.is_empty() && g2.is_empty() && l1.is_empty()) {
                propagate_p1(v, s, cs, fi, (g1, g2, l1), defer);
            }
        } else {
            let ce = &v.sp.out_chains[fi][slot as usize];
            let l = v.edges.get(ce.edge.index());
            let sx = &ce.suffix;
            // The delta crosses the suffix first, then the live hop
            // label — mask it down to what survives both, and skip the
            // reader if its value already absorbs the rest.
            let moved = !((gmd - sx.may_def) - l.may_def()).is_subset(*v.may_def.get(fi))
                || !(((lmd - sx.must_def) - l.must_def()) & *v.must_def.get(fi)).is_empty()
                || !((((gmu - sx.must_def) - sx.may_use) - l.must_def()) - l.may_use())
                    .is_subset(*v.may_use.get(fi));
            if moved {
                if defer {
                    cs.push_node(fi, s.node_rank[fi], s.node_rank[from]);
                } else {
                    cs.node_wl.push(fi, s.node_rank[fi]);
                }
            }
        }
    }
}

/// One routine's sparse phase-1 solve: fused call-return pull, anchor
/// sweep over composed chain edges, settled-entry broadcast with
/// on-demand entry values.
///
/// # Safety
/// As [`solve_comp_sparse1`].
unsafe fn solve_routine_sparse1(
    v: &Sparse1Views<'_>,
    s: &SccSchedule,
    c: usize,
    r: usize,
    cs: &mut CompSolver,
) -> usize {
    let first = !cs.seeded[r];
    let rn = &v.routines[r];
    // Snapshot the entry views BEFORE the call-return pull: an entry
    // contracted through a call reads that call's live label, so the
    // pull itself can grow the view without any node evaluation —
    // snapshotting first makes the settled comparison below catch
    // exactly those pull-induced changes (the phase-2 exit pull has the
    // same discipline).
    let snapshot: Vec<(RegSet, RegSet, RegSet)> =
        rn.entries().iter().map(|&x| p1_value(v, x.index())).collect();
    let mut labels_moved = false;
    for &e in &s.routine_cr_edges[r] {
        let (gmu, gmd, lmd) = recompute_cr_fused(v, e);
        labels_moved |= !(gmu.is_empty() && gmd.is_empty() && lmd.is_empty());
        if !first {
            let owner = v.edges.get(e.index()).from().index();
            if v.sp.chain_to[owner] == u32::MAX {
                // A lost `MUST-DEF` bit also unmasks `MAY-USE` flowing
                // through the label, but the owner's own kill set
                // always contains the loss (it was computed from the
                // old label), so the `MUST-DEF` absorption check fires
                // and the fused re-evaluation picks up both effects.
                if !gmd.is_subset(*v.may_def.get(owner))
                    || !(lmd & *v.must_def.get(owner)).is_empty()
                    || !gmu.is_subset(*v.may_use.get(owner))
                {
                    cs.node_wl.push(owner, s.node_rank[owner]);
                }
            } else if !(gmu.is_empty() && gmd.is_empty() && lmd.is_empty()) {
                // The owner call is contracted: no stored kill set
                // catches the unmask, so the lost `MUST-DEF` bits ride
                // along as potential `MAY-USE` gains and the chain walk
                // delivers the delta to the anchors above.
                let sx = &v.sp.chain_label[owner];
                propagate_p1(v, s, cs, owner, (gmu | lmd, gmd, lmd - sx.must_def), false);
            }
        }
    }
    if first {
        cs.seeded[r] = true;
        for &x in &v.sp.anchors[r] {
            cs.node_wl.push(x.index(), s.node_rank[x.index()]);
        }
    }
    // Fast path: nothing queued and no label moved — no value in this
    // routine (stored or viewed through a chain) can have changed since
    // the last settled comparison, so skip both sweep and broadcast.
    if !first && !labels_moved && cs.node_wl.is_empty() && !cs.has_deferred_nodes() {
        return 0;
    }

    let mut visits = 0usize;
    'sweep: loop {
        while let Some(xi) = cs.node_wl.pop() {
            if v.pinned[xi] || v.sp.out_chains[xi].is_empty() {
                continue;
            }
            visits += 1;
            // Fused evaluation over the composed chain edges: the hop
            // label `l` is read live (call-return labels move), the
            // suffix is static, and the target's value is read on
            // demand — through its own chain when it is a contracted
            // call.
            let mut may_use = RegSet::EMPTY;
            let mut may_def = RegSet::EMPTY;
            let mut must_def = RegSet::EMPTY;
            let mut first_edge = true;
            for ce in &v.sp.out_chains[xi] {
                let (mu_t, md_t, big_t) = p1_value(v, ce.to.index());
                let l = v.edges.get(ce.edge.index());
                may_def |= l.may_def() | ce.suffix.may_def | md_t;
                let md = l.must_def() | ce.suffix.must_def | big_t;
                if first_edge {
                    must_def = md;
                    first_edge = false;
                } else {
                    must_def &= md;
                }
                may_use |= l.may_use()
                    | (ce.suffix.may_use - l.must_def())
                    | ((mu_t - ce.suffix.must_def) - l.must_def());
            }
            debug_assert!(
                v.may_use.get(xi).is_subset(may_use)
                    && v.may_def.get(xi).is_subset(may_def)
                    && must_def.is_subset(*v.must_def.get(xi)),
                "fused sparse evaluation must be monotone on every lattice"
            );
            let gmu = may_use - *v.may_use.get(xi);
            let gmd = may_def - *v.may_def.get(xi);
            let lmd = *v.must_def.get(xi) - must_def;
            *v.may_use.get_mut(xi) = may_use;
            *v.may_def.get_mut(xi) = may_def;
            *v.must_def.get_mut(xi) = must_def;
            if gmu.is_empty() && gmd.is_empty() && lmd.is_empty() {
                continue;
            }

            propagate_p1(v, s, cs, xi, (gmu, gmd, lmd), true);
            // Eager broadcast only into this routine itself (direct
            // recursion through an *anchor* entry; a contracted entry's
            // change is caught by the settled comparison below).
            if matches!(v.nodes[xi], NodeKind::Entry { .. }) {
                for &e in &v.entry_cr_edges[xi] {
                    let owner = v.edges.get(e.index()).from().index();
                    if v.nodes[owner].routine().index() != r {
                        continue;
                    }
                    let (gmu, gmd, lmd) = recompute_cr_fused(v, e);
                    if v.sp.chain_to[owner] == u32::MAX {
                        if !gmd.is_subset(*v.may_def.get(owner))
                            || !(lmd & *v.must_def.get(owner)).is_empty()
                            || !gmu.is_subset(*v.may_use.get(owner))
                        {
                            cs.push_node(owner, s.node_rank[owner], s.node_rank[xi]);
                        }
                    } else if !(gmu.is_empty() && gmd.is_empty() && lmd.is_empty()) {
                        let sx = &v.sp.chain_label[owner];
                        propagate_p1(v, s, cs, owner, (gmu | lmd, gmd, lmd - sx.must_def), true);
                    }
                }
            }
        }
        if !cs.flush_deferred_nodes(&s.node_rank) {
            break 'sweep;
        }
    }

    // Batched broadcast with on-demand entry values. Direct recursion
    // through a *contracted* entry has no eager path above, so the
    // routine also re-queues itself in that case (the push defers to
    // the next round, where the pull re-checks the labels).
    for (k, &x) in rn.entries().iter().enumerate() {
        let xi = x.index();
        if p1_value(v, xi) == snapshot[k] {
            continue;
        }
        for &e in &v.entry_cr_edges[xi] {
            let owner = v.edges.get(e.index()).from().index();
            let or = v.nodes[owner].routine().index();
            if s.comp_of_routine[or] as usize != c {
                continue;
            }
            if or != r || v.sp.chain_to[xi] != u32::MAX {
                cs.push_routine(or, s.rrank1[or], s.rrank1[r]);
            }
        }
    }
    visits
}

/// Solves phase 2 for component `c` over anchors only.
///
/// # Safety
/// As `schedule::solve_comp_phase2`.
unsafe fn solve_comp_sparse2(
    v: &Sparse2Views<'_>,
    s: &SccSchedule,
    c: usize,
    cs: &mut CompSolver,
) -> usize {
    let routines = &s.cond.sccs().components()[c];
    for &r in routines.iter() {
        cs.seeded[r.index()] = false;
        cs.routine_wl.push(r.index(), s.rrank2[r.index()]);
    }
    let mut visits = 0usize;
    loop {
        while let Some(ri) = cs.routine_wl.pop() {
            visits += solve_routine_sparse2(v, s, c, ri, cs);
        }
        if cs.deferred_list.is_empty() {
            break;
        }
        let mut list = std::mem::take(&mut cs.deferred_list);
        for &r in &list {
            cs.deferred[r as usize] = false;
            cs.routine_wl.push(r as usize, s.rrank2[r as usize]);
        }
        list.clear();
        cs.deferred_list = list;
    }
    visits
}

/// One routine's sparse phase-2 solve: exit pull with on-demand
/// return-node liveness, anchor sweep, settled-return broadcast.
///
/// # Safety
/// As [`solve_comp_sparse2`].
/// The phase-2 twin of [`propagate_p1`]: routes a liveness delta at
/// dynamic point `from` through the chain readers, crossing contracted
/// calls' (phase-1-frozen) labels on the way up.
///
/// # Safety
/// As [`solve_routine_sparse2`].
unsafe fn propagate_p2(
    v: &Sparse2Views<'_>,
    s: &SccSchedule,
    cs: &mut CompSolver,
    from: usize,
    grown: RegSet,
    defer: bool,
) {
    for &(f, slot) in &v.sp.in_chains[from] {
        let fi = f.index();
        if slot == CALL_READER {
            let sx = &v.sp.chain_label[fi];
            let lc = &v.edges[v.out_edges[fi][0].index()];
            let g = (((grown - sx.must_def) - sx.may_use) - lc.must_def()) - lc.may_use();
            if !g.is_empty() {
                propagate_p2(v, s, cs, fi, g, defer);
            }
        } else {
            let ce = &v.sp.out_chains[fi][slot as usize];
            let l = &v.edges[ce.edge.index()];
            if !((((grown - ce.suffix.must_def) - ce.suffix.may_use) - l.must_def()) - l.may_use())
                .is_subset(*v.live.get(fi))
            {
                if defer {
                    cs.push_node(fi, s.node_rank[fi], s.node_rank[from]);
                } else {
                    cs.node_wl.push(fi, s.node_rank[fi]);
                }
            }
        }
    }
}

unsafe fn solve_routine_sparse2(
    v: &Sparse2Views<'_>,
    s: &SccSchedule,
    c: usize,
    r: usize,
    cs: &mut CompSolver,
) -> usize {
    let first = !cs.seeded[r];
    cs.seeded[r] = true;
    let rn = &v.routines[r];

    // Snapshot the return views BEFORE the exit pull, unlike the dense
    // engine: a contracted return's on-demand value is a view through
    // its anchor — frequently one of this routine's own exits — so the
    // pull itself (and the sweep's eager exit writes) can grow the view
    // without any node evaluation. Snapshotting first makes the settled
    // comparison below catch exactly those pull-induced changes, which
    // other exits may have merged stale.
    let snapshot: Vec<RegSet> =
        rn.calls().iter().map(|&(_, _, ret)| p2_value(v, ret.index())).collect();

    for &x in rn.exits() {
        let xi = x.index();
        let mut grown = RegSet::EMPTY;
        if !s.exit_sources[xi].is_empty() {
            let mut merged = *v.live.get(xi);
            for &ret in &s.exit_sources[xi] {
                merged |= p2_value(v, ret.index());
            }
            grown = merged - *v.live.get(xi);
            if !grown.is_empty() {
                *v.live.get_mut(xi) = merged;
            }
        }
        let delta = if first { *v.live.get(xi) } else { grown };
        if delta.is_empty() {
            continue;
        }
        propagate_p2(v, s, cs, xi, delta, false);
    }

    let mut visits = 0usize;
    'sweep: loop {
        while let Some(xi) = cs.node_wl.pop() {
            if v.pinned[xi] || v.sp.out_chains[xi].is_empty() {
                continue;
            }
            visits += 1;

            let mut live = *v.live.get(xi);
            for ce in &v.sp.out_chains[xi] {
                let lv_t = p2_value(v, ce.to.index());
                let l = &v.edges[ce.edge.index()];
                live |= l.may_use()
                    | (ce.suffix.may_use - l.must_def())
                    | ((lv_t - ce.suffix.must_def) - l.must_def());
            }
            let grown = live - *v.live.get(xi);
            if grown.is_empty() {
                continue;
            }
            *v.live.get_mut(xi) = live;

            propagate_p2(v, s, cs, xi, grown, true);
            // Eager broadcast into this routine's own exits (direct
            // recursion through an *anchor* return node).
            for &t in &v.return_exit_targets[xi] {
                let ti = t.index();
                if v.nodes[ti].routine().index() != r {
                    continue;
                }
                let egrown = grown - *v.live.get(ti);
                if !egrown.is_empty() {
                    *v.live.get_mut(ti) = *v.live.get(ti) | grown;
                    propagate_p2(v, s, cs, ti, egrown, true);
                }
            }
        }
        if !cs.flush_deferred_nodes(&s.node_rank) {
            break 'sweep;
        }
    }

    // Batched broadcast with on-demand return values; direct recursion
    // through a contracted return re-queues this routine itself.
    for (k, &(_, _, ret)) in rn.calls().iter().enumerate() {
        let reti = ret.index();
        if p2_value(v, reti) == snapshot[k] {
            continue;
        }
        for &t in &v.return_exit_targets[reti] {
            let tr = v.nodes[t.index()].routine().index();
            if s.comp_of_routine[tr] as usize != c {
                continue;
            }
            if tr != r || v.sp.chain_to[reti] != u32::MAX {
                cs.push_routine(tr, s.rrank2[tr], s.rrank2[r]);
            }
        }
    }
    visits
}

/// Recomputes a call-return edge's full label — all three lattices in
/// one pass, the fused twin of the dense per-stratum recomputes —
/// reading each source entry's value on demand through its chain.
/// Returns the label delta `(grown MAY-USE, grown MAY-DEF, lost
/// MUST-DEF)`.
///
/// # Safety
/// Exclusive access to edge `e`; no source entry's values (nor their
/// anchors') may be written concurrently.
unsafe fn recompute_cr_fused(v: &Sparse1Views<'_>, e: EdgeId) -> (RegSet, RegSet, RegSet) {
    let sources = &v.cr_sources[e.index()];
    debug_assert!(!sources.is_empty(), "only known-target edges are recomputed");
    let mut may_use = RegSet::EMPTY;
    let mut may_def = RegSet::EMPTY;
    let mut must_def = RegSet::EMPTY;
    let mut first = true;
    for &src in sources {
        let si = src.index();
        let csr = v.routines[v.nodes[si].routine().index()].saved_restored;
        let (mu, mad, mud) = p1_value(v, si);
        may_use |= mu - csr;
        may_def |= mad - csr;
        let md = mud - csr;
        if first {
            must_def = md;
            first = false;
        } else {
            must_def &= md;
        }
    }
    let edge = v.edges.get_mut(e.index());
    debug_assert_eq!(edge.kind(), EdgeKind::CallReturn);
    let delta = (may_use - edge.may_use, may_def - edge.may_def, edge.must_def - must_def);
    edge.may_use = may_use;
    edge.may_def = may_def;
    edge.must_def = must_def;
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{exported_exit_seeds, AnalysisOptions};
    use crate::build::build_psg;
    use crate::schedule::{run_phase1_scheduled, run_phase2_scheduled};
    use spike_cfg::RoutineCfg;
    use spike_program::Program;

    fn front_end(program: &Program, options: &AnalysisOptions) -> (ProgramCfg, Psg) {
        let n = program.routines().len();
        let mut cfgs: Vec<RoutineCfg> = (0..n)
            .map(|i| RoutineCfg::build_structure(program, RoutineId::from_index(i)))
            .collect();
        for c in &mut cfgs {
            c.init_def_ubd(program);
        }
        let cfg = ProgramCfg::from_cfgs(cfgs);
        let psg = build_psg(program, &cfg, options, 1);
        (cfg, psg)
    }

    /// Engine-level oracle: on every synthetic profile the sparse chain
    /// solver must leave *every* node value and *every* edge label — not
    /// just the materialized summary — bit-identical to the dense solver.
    #[test]
    fn sparse_matches_dense_engine_on_profiles() {
        let options = AnalysisOptions::default();
        for profile in spike_synth::profiles() {
            for seed in 0..3u64 {
                let scale = 25.0 / profile.routines as f64;
                let program = spike_synth::generate(&profile, scale, seed);
                let (cfg, psg0) = front_end(&program, &options);
                let schedule = SccSchedule::build(&program, &cfg, &psg0);
                let sparse = SparseProgram::build(&psg0, &schedule, &cfg);
                let mut dense = psg0.clone();
                let mut sp = psg0;
                run_phase1_scheduled(&mut dense, &schedule, None, 1);
                run_phase1_sparse(&mut sp, &schedule, &sparse, None, 1);
                for i in 0..dense.nodes.len() {
                    assert_eq!(
                        (dense.may_use[i], dense.may_def[i], dense.must_def[i]),
                        (sp.may_use[i], sp.may_def[i], sp.must_def[i]),
                        "{} seed {seed}: phase-1 values diverge at node {i} ({:?})",
                        profile.name,
                        dense.nodes[i]
                    );
                }
                for e in 0..dense.edges.len() {
                    assert_eq!(
                        dense.edges[e], sp.edges[e],
                        "{} seed {seed}: phase-1 edge label {e} diverges",
                        profile.name
                    );
                }

                let seeds = exported_exit_seeds(&program, &dense, &options);
                run_phase2_scheduled(&mut dense, &schedule, &seeds, None, 1);
                run_phase2_sparse(&mut sp, &schedule, &sparse, &seeds, None, 1);
                for i in 0..dense.nodes.len() {
                    assert_eq!(
                        dense.live[i], sp.live[i],
                        "{} seed {seed}: phase-2 liveness diverges at node {i} ({:?})",
                        profile.name, dense.nodes[i]
                    );
                }
            }
        }
    }
}
