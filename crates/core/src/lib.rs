//! # spike-core
//!
//! The paper's primary contribution: interprocedural register dataflow
//! analysis over a compact **Program Summary Graph** (PSG), as implemented
//! in Spike, Digital's post-link-time optimizer for Alpha/NT executables
//! (Goodwin, *Interprocedural Dataflow Analysis in an Executable
//! Optimizer*, PLDI 1997).
//!
//! For every routine the analysis produces (§2):
//!
//! * **call-used** — registers a call to the routine may read before
//!   writing (`MAY-USE` at its entry),
//! * **call-defined** — registers a call must write (`MUST-DEF`),
//! * **call-killed** — registers a call may overwrite (`MAY-DEF`),
//! * **live-at-entry** / **live-at-exit** — registers live at each
//!   entrance and exit, computed as a meet-over-all-*valid*-paths solution
//!   (callee paths must return to their call site).
//!
//! The pipeline (§3) is: build each routine's CFG and `DEF`/`UBD` sets,
//! chop the CFG at summary points into PSG nodes (entry, exit, call,
//! return, and §3.6 branch nodes), label each flow-summary edge by solving
//! the Figure-6 equations over the edge's CFG subgraph, then run two
//! worklist phases: phase 1 (Figure 8) flows callee summaries to call
//! sites; phase 2 (Figure 10) flows caller liveness back into callees.
//!
//! # Quick start
//!
//! ```
//! use spike_isa::Reg;
//! use spike_program::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! b.routine("main").def(Reg::A0).call("double").put_int().halt();
//! b.routine("double")
//!     .op(spike_isa::AluOp::Add, Reg::A0, Reg::A0, Reg::V0)
//!     .ret();
//! let program = b.build()?;
//!
//! let analysis = spike_core::analyze(&program);
//! let double = program.routine_by_name("double").unwrap();
//! let summary = analysis.summary.routine(double);
//! assert!(summary.call_used[0].contains(Reg::A0));   // reads its argument
//! assert!(summary.call_defined[0].contains(Reg::V0)); // writes its result
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod analysis;
mod build;
mod callee_saved;
mod dataflow;
mod dot;
mod flow;
mod incremental;
pub mod json;
pub mod parallel;
mod psg;
mod query;
mod schedule;
mod snap;
mod sparse;
mod stack;
mod summary;
pub mod worklist;

pub use analysis::{
    analyze, analyze_with, Analysis, AnalysisOptions, AnalysisStats, LoopStats, Representation,
    Scheduler,
};
pub use callee_saved::saved_restored_registers;
pub use incremental::{reanalyze, AnalysisCache};
pub use psg::{Edge, EdgeId, EdgeKind, NodeId, NodeKind, Psg, PsgStats, RoutineNodes};
pub use query::{Query, QueryAnswer, QueryEngine, QueryStats};
pub use snap::options_fingerprint;
pub use stack::{
    analyze_stack, reanalyze_stack, AccessKind, FrameModel, RoutineStack, Slot, SlotSet,
    StackAccess, StackAnalysis, StackStats, StackSummary,
};
pub use summary::{CallSiteSummary, ProgramSummary, RoutineSummary};
