//! Interprocedural stack-slot analysis.
//!
//! Registers are not the only machine state the optimizer can reason
//! about: SP-relative `Load`/`Store` traffic addresses a routine's stack
//! frame, and frames compose across calls just like register summaries
//! do. This module builds a restricted memory abstraction — a
//! scalable cousin of generalized points-to summaries, limited to
//! compile-time-constant SP offsets — and runs two slot dataflows over
//! it, mirroring how phases 1–2 compose register facts:
//!
//! * a **frame model** per routine: the slots it addresses, keyed by
//!   `(entry-SP-relative offset, width)`, discovered from `Load`/`Store`
//!   with `base == SP` while symbolically tracking SP as
//!   `entry_SP + disp` through `lda sp, d(sp)` adjustments;
//! * a forward **MUST-defined** slot analysis (which slots certainly
//!   hold a stored value at each block entry) — the slot dual of the
//!   uninit-read register dataflow;
//! * a backward **MAY-live** slot analysis (which slots may still be
//!   read after each block exit) — the slot dual of phase-2 liveness;
//! * per-routine **MOD/REF/KILL summaries** over the offsets a routine
//!   touches *above* its entry SP (its callers' frames), composed
//!   bottom-up over the call-graph SCC condensation and translated
//!   through each call site's SP displacement, so both dataflows see
//!   call instructions as slot transfer functions.
//!
//! # Escape rules
//!
//! The model stays sound by refusing to reason about frames it cannot
//! see completely. A routine's frame is marked **escaped** when
//!
//! * SP flows into another register or memory (`lda rX, d(sp)`,
//!   `store sp, ...`, any ALU use of SP) — a derived pointer could
//!   alias any slot;
//! * SP is redefined by anything but `lda sp, d(sp)` — the symbolic
//!   displacement is lost;
//! * two different access widths address the same offset — the machine
//!   keys memory by exact address, so same-offset width mixing is the
//!   one aliasing case the slot key cannot separate;
//! * SP displacements disagree at a join, or a callee is unbalanced —
//!   the displacement is no longer a compile-time constant.
//!
//! Escaped routines keep an empty slot universe, report no accesses,
//! and are **opaque** to callers (callers assume the callee may read or
//! write anything). Unknown-target calls and callees whose SP movement
//! is merely *untracked* are assumed SP-*balanced* (the calling
//! standard) but opaque; only a routine the scan can follow all the way
//! to a `Ret` with a nonzero displacement is **unbalanced**, and that is
//! viral — callers of an unbalanced routine lose SP tracking too.
//!
//! The spike-lint stack checks and spike-opt's dead-stack-store
//! elimination consume [`StackAnalysis::accesses`]; the soundness
//! oracle is `spike_sim::run_shadow_slots`, which tracks the identical
//! `[sp, entry_sp)` frame rule and per-address definedness at run time.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

use spike_callgraph::CallGraph;
use spike_cfg::{BlockId, CallTarget, ProgramCfg, TermKind};
use spike_isa::{CloneExact, HeapSize, Instruction, MemWidth, Reg};
use spike_program::{Program, Routine, RoutineId};

use crate::worklist::PriorityWorklist;

/// One stack slot of a routine's frame model: an access site class keyed
/// by its entry-SP-relative byte offset and access width.
///
/// Offsets are relative to the SP value *at routine entry*: negative
/// offsets are the routine's own frame, offsets `>= 0` address its
/// callers' frames. The machine keys memory cells by exact address, so
/// two slots at different offsets never alias; a width conflict at one
/// offset escapes the frame instead of modelling partial overlap.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Slot {
    /// Byte offset from the routine's entry SP.
    pub entry_off: i64,
    /// The access width every site uses for this offset.
    pub width: MemWidth,
}

spike_isa::impl_clone_exact_for_copy!(Slot);

impl HeapSize for Slot {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// A dense bitset over a routine's slot universe (indices into
/// [`FrameModel::slots`]).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SlotSet {
    bits: Vec<u64>,
}

impl SlotSet {
    /// The empty set over a universe of `n` slots.
    pub fn empty(n: usize) -> SlotSet {
        SlotSet { bits: vec![0; n.div_ceil(64)] }
    }

    /// The full set over a universe of `n` slots.
    pub fn full(n: usize) -> SlotSet {
        let mut bits = vec![u64::MAX; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = bits.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        SlotSet { bits }
    }

    /// Inserts slot `i`.
    pub fn insert(&mut self, i: usize) {
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Removes slot `i`.
    pub fn remove(&mut self, i: usize) {
        self.bits[i / 64] &= !(1 << (i % 64));
    }

    /// Whether slot `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        (self.bits[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Unions `other` in; returns whether `self` changed.
    pub fn union_with(&mut self, other: &SlotSet) -> bool {
        let mut changed = false;
        for (a, &b) in self.bits.iter_mut().zip(&other.bits) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Intersects `other` in.
    pub fn intersect_with(&mut self, other: &SlotSet) {
        for (a, &b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// Removes every slot in `other`.
    pub fn subtract(&mut self, other: &SlotSet) {
        for (a, &b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= !b;
        }
    }

    /// Overwrites `self` with `other` (same universe).
    pub fn copy_from(&mut self, other: &SlotSet) {
        self.bits.copy_from_slice(&other.bits);
    }

    /// Whether no slot is set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of slots in the set.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The set slot indices, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter(move |b| (w >> b) & 1 != 0).map(move |b| wi * 64 + b)
        })
    }
}

impl HeapSize for SlotSet {
    fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes()
    }
}

impl CloneExact for SlotSet {
    fn clone_exact(&self) -> Self {
        SlotSet { bits: self.bits.clone_exact() }
    }
}

impl spike_isa::Snap for SlotSet {
    fn snap(&self, w: &mut spike_isa::SnapWriter) {
        spike_isa::Snap::snap(&self.bits, w);
    }
    fn unsnap(r: &mut spike_isa::SnapReader<'_>) -> Result<Self, spike_isa::SnapError> {
        Ok(SlotSet { bits: spike_isa::Snap::unsnap(r)? })
    }
}

/// A routine's discovered stack frame.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FrameModel {
    /// Maximum bytes SP is lowered below its entry value on any tracked
    /// path (`max(0, -min(sp_disp))`). Zero for frameless or escaped
    /// routines.
    pub frame_size: i64,
    /// The slot universe, sorted by `entry_off`. Offsets are unique
    /// (a width conflict escapes the frame instead).
    pub slots: Vec<Slot>,
    /// Whether the frame escaped the model (see the module docs for the
    /// rules). Escaped routines report no accesses and empty dataflow
    /// sets, and are opaque to callers.
    pub escaped: bool,
}

impl FrameModel {
    /// The index of the slot at `entry_off`, if modelled.
    pub fn slot_at(&self, entry_off: i64) -> Option<usize> {
        self.slots.binary_search_by_key(&entry_off, |s| s.entry_off).ok()
    }
}

impl HeapSize for FrameModel {
    fn heap_bytes(&self) -> usize {
        self.slots.heap_bytes()
    }
}

impl CloneExact for FrameModel {
    fn clone_exact(&self) -> Self {
        FrameModel {
            frame_size: self.frame_size,
            slots: self.slots.clone_exact(),
            escaped: self.escaped,
        }
    }
}

/// A routine's interprocedural stack effect, as seen by its callers.
///
/// The `*_above` offset lists are relative to the routine's *entry* SP
/// and only contain offsets `>= 0` (the caller-frame region); a caller
/// translates them by its own SP displacement at the call site. All
/// three are empty for routines that never touch caller frames — the
/// common case for a conforming calling standard.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StackSummary {
    /// Whether the routine provably returns with SP different from its
    /// entry value. Viral: callers of an unbalanced routine lose SP
    /// tracking too. Untracked SP movement is *not* unbalanced — like
    /// unknown-target callees, such routines are assumed balanced per
    /// the calling standard, just opaque.
    pub unbalanced: bool,
    /// Whether callers must assume the routine may read or write any
    /// stack location: its frame escaped, it is unbalanced, or it
    /// (transitively) makes unknown-target calls.
    pub opaque: bool,
    /// Offsets above the entry SP the routine (transitively) may read.
    pub refs_above: Vec<i64>,
    /// Offsets above the entry SP the routine (transitively) may write.
    pub mods_above: Vec<i64>,
    /// Offsets above the entry SP the routine writes on *every* path to
    /// a return. Empty for recursive routines (a sound
    /// under-approximation keeps the SCC fixpoint trivial).
    pub kills_above: Vec<i64>,
}

impl HeapSize for StackSummary {
    fn heap_bytes(&self) -> usize {
        self.refs_above.heap_bytes() + self.mods_above.heap_bytes() + self.kills_above.heap_bytes()
    }
}

impl CloneExact for StackSummary {
    fn clone_exact(&self) -> Self {
        StackSummary {
            unbalanced: self.unbalanced,
            opaque: self.opaque,
            refs_above: self.refs_above.clone_exact(),
            mods_above: self.mods_above.clone_exact(),
            kills_above: self.kills_above.clone_exact(),
        }
    }
}

/// The converged per-routine stack facts. All vectors are indexed by
/// [`BlockId`] within the routine's CFG; everything is block-index and
/// offset based (address-free), so a pure rebase leaves it valid.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoutineStack {
    /// The frame model.
    pub frame: FrameModel,
    /// The MOD/REF/KILL summary callers compose with.
    pub summary: StackSummary,
    /// SP displacement (relative to entry SP) at each block's first
    /// instruction; `None` for blocks unreachable along tracked arcs or
    /// when tracking failed.
    pub sp_disp_in: Vec<Option<i64>>,
    /// Per block: slots certainly written on every path to the block's
    /// first instruction (greatest fixpoint; all-empty when escaped).
    pub must_defined_in: Vec<SlotSet>,
    /// Per block: slots that may still be read after the block's last
    /// instruction (least fixpoint; all-empty when escaped).
    pub live_out: Vec<SlotSet>,
    /// Whether the routine sits on a call-graph cycle (its
    /// `kills_above` is pinned empty; recorded so incremental reuse can
    /// detect condensation changes).
    pub cyclic: bool,
}

impl HeapSize for RoutineStack {
    fn heap_bytes(&self) -> usize {
        self.frame.heap_bytes()
            + self.summary.heap_bytes()
            + self.sp_disp_in.heap_bytes()
            + self.must_defined_in.heap_bytes()
            + self.live_out.heap_bytes()
    }
}

impl CloneExact for RoutineStack {
    fn clone_exact(&self) -> Self {
        RoutineStack {
            frame: self.frame.clone_exact(),
            summary: self.summary.clone_exact(),
            sp_disp_in: self.sp_disp_in.clone_exact(),
            must_defined_in: self.must_defined_in.clone_exact(),
            live_out: self.live_out.clone_exact(),
            cyclic: self.cyclic,
        }
    }
}

/// The whole-program stack-slot analysis, one [`RoutineStack`] per
/// routine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StackAnalysis {
    routines: Vec<RoutineStack>,
}

impl HeapSize for StackAnalysis {
    fn heap_bytes(&self) -> usize {
        self.routines.heap_bytes()
    }
}

impl CloneExact for StackAnalysis {
    fn clone_exact(&self) -> Self {
        StackAnalysis { routines: self.routines.clone_exact() }
    }
}

impl spike_isa::Snap for StackAnalysis {
    fn snap(&self, w: &mut spike_isa::SnapWriter) {
        spike_isa::Snap::snap(&self.routines, w);
    }
    fn unsnap(r: &mut spike_isa::SnapReader<'_>) -> Result<Self, spike_isa::SnapError> {
        Ok(StackAnalysis { routines: spike_isa::Snap::unsnap(r)? })
    }
}

/// Fixpoint effort counters for the two slot dataflows, reported next
/// to the phase 1–2 visit counts. Kept outside [`StackAnalysis`] so
/// result equality checks exclude effort.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StackStats {
    /// Block evaluations of the forward MUST-defined solver.
    pub forward_visits: usize,
    /// Block evaluations of the backward MAY-live solver.
    pub backward_visits: usize,
}

/// Whether a [`StackAccess`] reads or writes its slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// An SP-relative `Load`.
    Load,
    /// An SP-relative `Store`.
    Store,
}

/// One SP-relative memory access, annotated with the converged dataflow
/// facts at its program point. The single consumer API for the stack
/// lints and dead-stack-store elimination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StackAccess {
    /// The instruction address.
    pub addr: u32,
    /// The block containing it.
    pub block: BlockId,
    /// Read or write.
    pub kind: AccessKind,
    /// Access width.
    pub width: MemWidth,
    /// Entry-SP-relative byte offset of the addressed slot.
    pub entry_off: i64,
    /// SP displacement (relative to entry SP) when the access executes.
    pub sp_disp: i64,
    /// Whether the address lies inside the live frame region
    /// `[sp, entry_sp)` at the access — the identical rule
    /// `spike_sim::run_shadow_slots` enforces.
    pub in_frame: bool,
    /// For loads: whether the slot is certainly written on every path
    /// here (true for stores' target too, pre-store).
    pub defined_before: bool,
    /// For stores: whether the slot may still be read after this store
    /// executes (always true for loads).
    pub live_after: bool,
}

// ---------------------------------------------------------------------
// Local scan: SP tracking, frame discovery.
// ---------------------------------------------------------------------

/// How one instruction affects the symbolic `SP = entry_SP + disp`
/// tracking.
enum SpEffect {
    /// `lda sp, d(sp)`: displacement moves by `d`.
    Adjust(i64),
    /// SP redefined any other way: tracking is lost.
    Untracked,
    /// SP's value flows somewhere the model cannot see.
    Leak,
    /// No effect on SP (SP-based loads/stores included).
    Neutral,
}

fn sp_effect(insn: &Instruction) -> SpEffect {
    match *insn {
        Instruction::Lda { rd: Reg::SP, base: Reg::SP, disp } => SpEffect::Adjust(disp as i64),
        _ if insn.defs().contains(Reg::SP) => SpEffect::Untracked,
        Instruction::Load { base: Reg::SP, .. } => SpEffect::Neutral,
        Instruction::Store { base: Reg::SP, rs, .. } if rs != Reg::SP => SpEffect::Neutral,
        _ if insn.uses().contains(Reg::SP) => SpEffect::Leak,
        _ => SpEffect::Neutral,
    }
}

/// The slot access an instruction performs, if any: `(kind, width,
/// instruction displacement)`. `store sp, d(sp)` is a leak, not an
/// access.
fn sp_access(insn: &Instruction) -> Option<(AccessKind, MemWidth, i16)> {
    match *insn {
        Instruction::Load { width, base: Reg::SP, rd, disp } if rd != Reg::SP => {
            Some((AccessKind::Load, width, disp))
        }
        Instruction::Store { width, base: Reg::SP, rs, disp } if rs != Reg::SP => {
            Some((AccessKind::Store, width, disp))
        }
        _ => None,
    }
}

/// Everything the per-routine scan learns before the dataflows run.
struct LocalScan {
    tracked: bool,
    escaped: bool,
    balanced: bool,
    has_unknown_call: bool,
    frame_size: i64,
    slots: Vec<Slot>,
    sp_disp_in: Vec<Option<i64>>,
}

fn local_scan(
    program: &Program,
    pcfg: &ProgramCfg,
    rid: RoutineId,
    summaries: &[StackSummary],
) -> LocalScan {
    let routine = program.routine(rid);
    let cfg = pcfg.routine_cfg(rid);
    let nb = cfg.blocks().len();

    // Pass 1: per-block SP delta, running minimum, and escape flags.
    let mut delta = vec![0i64; nb];
    let mut min_rel = vec![0i64; nb];
    let mut leaked = false;
    let mut tracked = true;
    let mut has_unknown_call = false;
    for (bi, block) in cfg.blocks().iter().enumerate() {
        let mut rel = 0i64;
        for addr in block.start()..block.end() {
            let insn = routine.insn_at(addr).expect("address in routine");
            match sp_effect(insn) {
                SpEffect::Adjust(d) => {
                    rel += d;
                    min_rel[bi] = min_rel[bi].min(rel);
                }
                SpEffect::Untracked => tracked = false,
                SpEffect::Leak => leaked = true,
                SpEffect::Neutral => {}
            }
        }
        delta[bi] = rel;
        if let TermKind::Call { target, .. } = block.term() {
            // An unbalanced callee clobbers the caller's displacement:
            // viral loss of tracking. Unknown-target calls are assumed
            // balanced (the calling standard) but make us opaque.
            match target {
                CallTarget::Direct(c, _) => {
                    if summaries[c.index()].unbalanced {
                        tracked = false;
                    }
                }
                CallTarget::IndirectKnown(list) => {
                    for (c, _) in list {
                        if summaries[c.index()].unbalanced {
                            tracked = false;
                        }
                    }
                }
                CallTarget::IndirectUnknown | CallTarget::IndirectHinted { .. } => {
                    has_unknown_call = true;
                }
            }
        }
    }

    // Pass 2: propagate entry-relative displacements over flow arcs
    // (successors plus the call → return-point arc the CFG omits). A
    // disagreement at a join loses tracking for the whole routine.
    let mut sp_disp_in: Vec<Option<i64>> = vec![None; nb];
    if tracked {
        let mut conflict = false;
        let mut stack: Vec<BlockId> = Vec::new();
        for &e in cfg.entries() {
            if sp_disp_in[e.index()].is_none() {
                sp_disp_in[e.index()] = Some(0);
                stack.push(e);
            }
        }
        while let Some(b) = stack.pop() {
            let bi = b.index();
            let d_out = sp_disp_in[bi].expect("queued blocks have a displacement") + delta[bi];
            let block = cfg.block(b);
            let mut flow = |s: BlockId| match sp_disp_in[s.index()] {
                None => {
                    sp_disp_in[s.index()] = Some(d_out);
                    stack.push(s);
                }
                Some(v) if v == d_out => {}
                Some(_) => conflict = true,
            };
            for &s in block.succs() {
                flow(s);
            }
            if let TermKind::Call { return_to: Some(rt), .. } = block.term() {
                flow(*rt);
            }
            if conflict {
                break;
            }
        }
        if conflict {
            tracked = false;
            sp_disp_in.fill(None);
        }
    }

    // Slot discovery, frame size, and exit balance over tracked blocks.
    let mut width_conflict = false;
    let mut slot_map: BTreeMap<i64, MemWidth> = BTreeMap::new();
    let mut min_disp = 0i64;
    // Balance defaults to the calling-standard assumption; only a
    // tracked path into a `Ret` can refute it.
    let mut balanced = true;
    if tracked {
        for (bi, block) in cfg.blocks().iter().enumerate() {
            let Some(d0) = sp_disp_in[bi] else { continue };
            min_disp = min_disp.min(d0 + min_rel[bi]);
            let mut rel = d0;
            for addr in block.start()..block.end() {
                let insn = routine.insn_at(addr).expect("address in routine");
                if let Some((_, width, disp)) = sp_access(insn) {
                    match slot_map.entry(rel + disp as i64) {
                        Entry::Vacant(v) => {
                            v.insert(width);
                        }
                        Entry::Occupied(o) => {
                            if *o.get() != width {
                                width_conflict = true;
                            }
                        }
                    }
                } else if let SpEffect::Adjust(d) = sp_effect(insn) {
                    rel += d;
                }
            }
            if matches!(block.term(), TermKind::Ret) && rel != 0 {
                balanced = false;
            }
        }
    }

    let slots: Vec<Slot> =
        slot_map.iter().map(|(&entry_off, &width)| Slot { entry_off, width }).collect();
    LocalScan {
        tracked,
        escaped: leaked || !tracked || width_conflict,
        balanced,
        has_unknown_call,
        frame_size: (-min_disp).max(0),
        slots,
        sp_disp_in,
    }
}

// ---------------------------------------------------------------------
// Summary composition (phase A).
// ---------------------------------------------------------------------

fn compose_summary(
    program: &Program,
    pcfg: &ProgramCfg,
    rid: RoutineId,
    local: &LocalScan,
    summaries: &[StackSummary],
) -> StackSummary {
    let routine = program.routine(rid);
    let cfg = pcfg.routine_cfg(rid);
    let unbalanced = !local.balanced;
    let mut opaque = local.escaped || unbalanced || local.has_unknown_call;
    let mut refs: BTreeSet<i64> = BTreeSet::new();
    let mut mods: BTreeSet<i64> = BTreeSet::new();
    if local.tracked {
        for (bi, block) in cfg.blocks().iter().enumerate() {
            let Some(d0) = local.sp_disp_in[bi] else { continue };
            let mut rel = d0;
            for addr in block.start()..block.end() {
                let insn = routine.insn_at(addr).expect("address in routine");
                if let Some((kind, _, disp)) = sp_access(insn) {
                    let off = rel + disp as i64;
                    if off >= 0 {
                        match kind {
                            AccessKind::Load => refs.insert(off),
                            AccessKind::Store => mods.insert(off),
                        };
                    }
                } else if let SpEffect::Adjust(d) = sp_effect(insn) {
                    rel += d;
                }
            }
            if let TermKind::Call { target, .. } = block.term() {
                // Translate callee effects through the call-site
                // displacement: callee entry SP = our entry SP + rel.
                let mut add = |c: RoutineId| {
                    let s = &summaries[c.index()];
                    if s.opaque {
                        opaque = true;
                        return;
                    }
                    for &o in &s.refs_above {
                        let t = o + rel;
                        if t >= 0 {
                            refs.insert(t);
                        }
                    }
                    for &o in &s.mods_above {
                        let t = o + rel;
                        if t >= 0 {
                            mods.insert(t);
                        }
                    }
                };
                match target {
                    CallTarget::Direct(c, _) => add(*c),
                    CallTarget::IndirectKnown(list) => {
                        for &(c, _) in list {
                            add(c);
                        }
                    }
                    CallTarget::IndirectUnknown | CallTarget::IndirectHinted { .. } => {}
                }
            }
        }
    }
    StackSummary {
        unbalanced,
        opaque,
        refs_above: refs.into_iter().collect(),
        mods_above: mods.into_iter().collect(),
        kills_above: Vec::new(),
    }
}

// ---------------------------------------------------------------------
// Phase B: the two slot dataflows.
// ---------------------------------------------------------------------

/// A call terminator as a slot transfer function, in the caller's slot
/// universe.
struct CallMask {
    /// Slots every callee certainly writes (∩ over targets).
    kills: SlotSet,
    /// Slots some callee may read (∪ over targets).
    refs: SlotSet,
    /// An opaque or unknown callee: may read anything.
    refs_full: bool,
}

fn call_mask<'a>(
    target: &CallTarget,
    d_call: i64,
    summary_of: impl Fn(usize) -> &'a StackSummary,
    idx_of: &BTreeMap<i64, usize>,
    n: usize,
) -> CallMask {
    let mut targets: Vec<usize> = Vec::new();
    match target {
        CallTarget::Direct(c, _) => targets.push(c.index()),
        CallTarget::IndirectKnown(list) => targets.extend(list.iter().map(|(c, _)| c.index())),
        CallTarget::IndirectUnknown | CallTarget::IndirectHinted { .. } => {
            return CallMask { kills: SlotSet::empty(n), refs: SlotSet::empty(n), refs_full: true };
        }
    }
    let mut refs_full = false;
    let mut refs = SlotSet::empty(n);
    let mut kills: Option<SlotSet> = None;
    for ci in targets {
        let s = summary_of(ci);
        if s.opaque {
            refs_full = true;
        } else {
            for &o in &s.refs_above {
                if let Some(&i) = idx_of.get(&(o + d_call)) {
                    refs.insert(i);
                }
            }
        }
        let mut k = SlotSet::empty(n);
        for &o in &s.kills_above {
            if let Some(&i) = idx_of.get(&(o + d_call)) {
                k.insert(i);
            }
        }
        match &mut kills {
            None => kills = Some(k),
            Some(acc) => acc.intersect_with(&k),
        }
    }
    CallMask { kills: kills.unwrap_or_else(|| SlotSet::empty(n)), refs, refs_full }
}

/// One forward step through a block's slot effects.
enum Step {
    /// Load of a slot.
    Use(usize),
    /// Store to a slot.
    Def(usize),
    /// SP adjustment crossing the address region `[lo, hi)`: those
    /// slots' contents cease to exist.
    Wipe(i64, i64),
}

/// A block's composed slot transfer functions.
#[derive(Default)]
struct BlockMasks {
    /// Forward: slots certainly defined at exit regardless of entry.
    gen: SlotSet,
    /// Forward: slots whose entry definedness does not survive.
    clear: SlotSet,
    /// Backward: slots live at entry regardless of exit liveness.
    used: SlotSet,
    /// Backward: slots whose exit liveness does not reach the entry.
    def: SlotSet,
}

fn build_masks(
    routine: &Routine,
    block: &spike_cfg::BasicBlock,
    d0: Option<i64>,
    idx_of: &BTreeMap<i64, usize>,
    n: usize,
    summaries: &[StackSummary],
) -> BlockMasks {
    let mut m = BlockMasks {
        gen: SlotSet::empty(n),
        clear: SlotSet::empty(n),
        used: SlotSet::empty(n),
        def: SlotSet::empty(n),
    };
    let Some(d0) = d0 else { return m };
    // Re-derive the step list with real slot indices.
    let mut steps: Vec<Step> = Vec::new();
    let mut rel = d0;
    for addr in block.start()..block.end() {
        let insn = routine.insn_at(addr).expect("address in routine");
        if let Some((kind, _, disp)) = sp_access(insn) {
            let idx = idx_of[&(rel + disp as i64)];
            steps.push(match kind {
                AccessKind::Load => Step::Use(idx),
                AccessKind::Store => Step::Def(idx),
            });
        } else if let SpEffect::Adjust(d) = sp_effect(insn) {
            let d1 = rel + d;
            steps.push(Step::Wipe(rel.min(d1), rel.max(d1)));
            rel = d1;
        }
    }
    let call = match block.term() {
        TermKind::Call { target, .. } => Some(call_mask(target, rel, |i| &summaries[i], idx_of, n)),
        _ => None,
    };

    // Forward composition: out = (in − clear) ∪ gen.
    for step in &steps {
        match *step {
            Step::Def(i) => {
                m.gen.insert(i);
                m.clear.remove(i);
            }
            Step::Use(_) => {}
            Step::Wipe(lo, hi) => {
                for (_, &i) in idx_of.range(lo..hi) {
                    m.clear.insert(i);
                    m.gen.remove(i);
                }
            }
        }
    }
    if let Some(cm) = &call {
        // A balanced callee only adds definedness (its own frame sits
        // strictly below our SP); it never un-defines a caller slot.
        m.gen.union_with(&cm.kills);
        m.clear.subtract(&cm.kills);
    }

    // Backward composition: in = used ∪ (out − def), terminator first.
    if let Some(cm) = &call {
        if cm.refs_full {
            m.used = SlotSet::full(n);
        } else {
            m.used.copy_from(&cm.refs);
            m.def.copy_from(&cm.kills);
        }
    }
    for step in steps.iter().rev() {
        match *step {
            Step::Use(i) => m.used.insert(i),
            Step::Def(i) => {
                m.used.remove(i);
                m.def.insert(i);
            }
            Step::Wipe(lo, hi) => {
                for (_, &i) in idx_of.range(lo..hi) {
                    m.used.remove(i);
                    m.def.insert(i);
                }
            }
        }
    }
    m
}

/// Reverse-postorder ranks over `adj` from `roots`; unreached items get
/// tail ranks in index order.
fn rpo_ranks(adj: &[Vec<u32>], roots: &[usize]) -> Vec<u32> {
    let nb = adj.len();
    let mut rank = vec![u32::MAX; nb];
    let mut seen = vec![false; nb];
    let mut postorder: Vec<u32> = Vec::with_capacity(nb);
    let mut dfs: Vec<(u32, u32)> = Vec::new();
    for &b in roots {
        if seen[b] {
            continue;
        }
        seen[b] = true;
        dfs.push((b as u32, 0));
        while let Some(frame) = dfs.last_mut() {
            let (x, k) = (frame.0 as usize, frame.1 as usize);
            if k < adj[x].len() {
                frame.1 += 1;
                let y = adj[x][k] as usize;
                if !seen[y] {
                    seen[y] = true;
                    dfs.push((y as u32, 0));
                }
            } else {
                dfs.pop();
                postorder.push(x as u32);
            }
        }
    }
    let mut next = 0u32;
    for &x in postorder.iter().rev() {
        rank[x as usize] = next;
        next += 1;
    }
    for r in rank.iter_mut() {
        if *r == u32::MAX {
            *r = next;
            next += 1;
        }
    }
    rank
}

struct PhaseB {
    must_defined_in: Vec<SlotSet>,
    live_out: Vec<SlotSet>,
    masks: Vec<BlockMasks>,
}

fn phase_b(
    program: &Program,
    pcfg: &ProgramCfg,
    rid: RoutineId,
    local: &LocalScan,
    summaries: &[StackSummary],
    stats: &mut StackStats,
) -> PhaseB {
    let cfg = pcfg.routine_cfg(rid);
    let nb = cfg.blocks().len();
    let n = local.slots.len();
    if local.escaped {
        return PhaseB {
            must_defined_in: vec![SlotSet::empty(n); nb],
            live_out: vec![SlotSet::empty(n); nb],
            masks: Vec::new(),
        };
    }
    let routine = program.routine(rid);
    let idx_of: BTreeMap<i64, usize> =
        local.slots.iter().enumerate().map(|(i, s)| (s.entry_off, i)).collect();

    // Flow arcs: successors plus call → return-point; `rev` is the
    // exact reader (flow-predecessor) relation.
    let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); nb];
    for (i, outs) in fwd.iter_mut().enumerate() {
        let block = cfg.block(BlockId::from_index(i));
        if let TermKind::Call { return_to: Some(rt), .. } = block.term() {
            outs.push(rt.index() as u32);
        }
        outs.extend(block.succs().iter().map(|s| s.index() as u32));
    }
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); nb];
    for (i, outs) in fwd.iter().enumerate() {
        for &s in outs {
            rev[s as usize].push(i as u32);
        }
    }

    let masks: Vec<BlockMasks> = cfg
        .blocks()
        .iter()
        .enumerate()
        .map(|(bi, block)| build_masks(routine, block, local.sp_disp_in[bi], &idx_of, n, summaries))
        .collect();

    let mut above = SlotSet::empty(n);
    for (i, s) in local.slots.iter().enumerate() {
        if s.entry_off >= 0 {
            above.insert(i);
        }
    }

    // Forward MUST-defined: greatest fixpoint of
    //   in[b] = constraint[b] ∩ ⋂_{p ∈ flow-preds} (in[p] − clear[p]) ∪ gen[p]
    // with constraint ∅ at entrances (no slot exists before the
    // prologue allocates it) and ⊤ elsewhere.
    let entry_roots: Vec<usize> = cfg.entries().iter().map(|b| b.index()).collect();
    let frank = rpo_ranks(&fwd, &entry_roots);
    let mut is_entry = vec![false; nb];
    for &e in cfg.entries() {
        is_entry[e.index()] = true;
    }
    let mut must_in: Vec<SlotSet> = vec![SlotSet::full(n); nb];
    let mut wl = PriorityWorklist::new(nb);
    for (i, &r) in frank.iter().enumerate() {
        wl.push(i, r);
    }
    let mut tmp = SlotSet::empty(n);
    while let Some(i) = wl.pop() {
        stats.forward_visits += 1;
        let mut acc = if is_entry[i] { SlotSet::empty(n) } else { SlotSet::full(n) };
        for &p in &rev[i] {
            let p = p as usize;
            tmp.copy_from(&must_in[p]);
            tmp.subtract(&masks[p].clear);
            tmp.union_with(&masks[p].gen);
            acc.intersect_with(&tmp);
        }
        if acc != must_in[i] {
            must_in[i] = acc;
            for &s in &fwd[i] {
                wl.push(s as usize, frank[s as usize]);
            }
        }
    }

    // Backward MAY-live: least fixpoint of
    //   out[b] = boundary[b] ∪ ⋃_{s ∈ flow-succs} in[s]
    //   in[b]  = used[b] ∪ (out[b] − def[b])
    // with boundary(Ret) = the above-entry slots (the caller may read
    // them), boundary(Halt) = ∅, boundary(UnknownJump) = ⊤.
    let term_roots: Vec<usize> = (0..nb).filter(|&i| fwd[i].is_empty()).collect();
    let brank = rpo_ranks(&rev, &term_roots);
    let boundary: Vec<SlotSet> = (0..nb)
        .map(|i| {
            if !fwd[i].is_empty() {
                SlotSet::empty(n)
            } else {
                match cfg.block(BlockId::from_index(i)).term() {
                    TermKind::Ret => above.clone(),
                    TermKind::UnknownJump => SlotSet::full(n),
                    _ => SlotSet::empty(n),
                }
            }
        })
        .collect();
    let mut live_in: Vec<SlotSet> = vec![SlotSet::empty(n); nb];
    let mut live_out: Vec<SlotSet> = vec![SlotSet::empty(n); nb];
    let mut wl = PriorityWorklist::new(nb);
    for (i, &r) in brank.iter().enumerate() {
        wl.push(i, r);
    }
    while let Some(i) = wl.pop() {
        stats.backward_visits += 1;
        let mut out = boundary[i].clone();
        for &s in &fwd[i] {
            out.union_with(&live_in[s as usize]);
        }
        live_out[i].copy_from(&out);
        out.subtract(&masks[i].def);
        out.union_with(&masks[i].used);
        if out != live_in[i] {
            live_in[i] = out;
            for &p in &rev[i] {
                wl.push(p as usize, brank[p as usize]);
            }
        }
    }

    PhaseB { must_defined_in: must_in, live_out, masks }
}

// ---------------------------------------------------------------------
// Component driver.
// ---------------------------------------------------------------------

fn solve_component(
    program: &Program,
    pcfg: &ProgramCfg,
    component: &[RoutineId],
    cyclic: bool,
    summaries: &mut [StackSummary],
    routines: &mut [Option<RoutineStack>],
    stats: &mut StackStats,
) {
    // Phase A: iterate locals + summaries to a fixpoint over the
    // component (single pass for acyclic components). The summary
    // lattice ascends from the optimistic default, so convergence is
    // the common case; a pathological cycle that keeps translating
    // offsets upward is cut off by forcing opacity.
    for &rid in component {
        summaries[rid.index()] = StackSummary::default();
    }
    let limit = 2 * component.len() + 8;
    let mut locals: Vec<LocalScan> = Vec::with_capacity(component.len());
    let mut round = 0usize;
    loop {
        locals.clear();
        let mut changed = false;
        for &rid in component {
            let local = local_scan(program, pcfg, rid, summaries);
            let s = compose_summary(program, pcfg, rid, &local, summaries);
            if s != summaries[rid.index()] {
                summaries[rid.index()] = s;
                changed = true;
            }
            locals.push(local);
        }
        if !changed {
            break;
        }
        round += 1;
        if round > limit {
            for &rid in component {
                let unbalanced = summaries[rid.index()].unbalanced;
                summaries[rid.index()] = StackSummary {
                    unbalanced,
                    opaque: true,
                    refs_above: Vec::new(),
                    mods_above: Vec::new(),
                    kills_above: Vec::new(),
                };
            }
            locals.clear();
            for &rid in component {
                locals.push(local_scan(program, pcfg, rid, summaries));
            }
            break;
        }
    }

    // Phase B per member, then extract KILL for non-cyclic routines:
    // the must-defined slots above the entry SP at every reachable
    // return, available to callers because components are processed
    // bottom-up. Cyclic routines keep an empty KILL (sound
    // under-approximation).
    for (local, &rid) in locals.iter().zip(component) {
        let pb = phase_b(program, pcfg, rid, local, summaries, stats);
        if !cyclic && !local.escaped && !summaries[rid.index()].unbalanced {
            let cfg = pcfg.routine_cfg(rid);
            let mut kills: Option<SlotSet> = None;
            for (bi, block) in cfg.blocks().iter().enumerate() {
                if !matches!(block.term(), TermKind::Ret) || local.sp_disp_in[bi].is_none() {
                    continue;
                }
                let mut out = pb.must_defined_in[bi].clone();
                out.subtract(&pb.masks[bi].clear);
                out.union_with(&pb.masks[bi].gen);
                match &mut kills {
                    None => kills = Some(out),
                    Some(acc) => acc.intersect_with(&out),
                }
            }
            if let Some(k) = kills {
                summaries[rid.index()].kills_above = local
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|&(i, s)| s.entry_off >= 0 && k.contains(i))
                    .map(|(_, s)| s.entry_off)
                    .collect();
            }
        }
        routines[rid.index()] = Some(RoutineStack {
            frame: FrameModel {
                frame_size: local.frame_size,
                slots: local.slots.clone(),
                escaped: local.escaped,
            },
            summary: summaries[rid.index()].clone(),
            sp_disp_in: local.sp_disp_in.clone(),
            must_defined_in: pb.must_defined_in,
            live_out: pb.live_out,
            cyclic,
        });
    }
}

fn is_cyclic(cg: &CallGraph, component: &[RoutineId]) -> bool {
    component.len() > 1 || component.iter().any(|&r| cg.callees(r).contains(&r))
}

/// Runs the whole-program stack-slot analysis: frame models, MOD/REF/
/// KILL summaries composed bottom-up over the call-graph condensation,
/// and the two slot dataflows per routine.
pub fn analyze_stack(program: &Program, cfg: &ProgramCfg) -> (StackAnalysis, StackStats) {
    let n = program.routines().len();
    let cg = CallGraph::build(program, cfg);
    let sccs = cg.sccs();
    let mut summaries = vec![StackSummary::default(); n];
    let mut routines: Vec<Option<RoutineStack>> = (0..n).map(|_| None).collect();
    let mut stats = StackStats::default();
    for component in sccs.bottom_up() {
        let cyclic = is_cyclic(&cg, component);
        solve_component(program, cfg, component, cyclic, &mut summaries, &mut routines, &mut stats);
    }
    let routines: Vec<RoutineStack> =
        routines.into_iter().map(|o| o.expect("every routine solved")).collect();
    (StackAnalysis { routines }, stats)
}

/// Incremental variant: rebuilds only the call-graph components that
/// contain a dirty routine or whose external callee summaries changed,
/// moving every other routine's facts out of `prev` untouched.
///
/// Bit-identical to [`analyze_stack`] on the same program (including
/// heap capacities, so `memory_bytes` accounting is preserved): a
/// reused component's inputs — member instruction text, external callee
/// summaries, and its cyclic flag — are proven unchanged, and
/// recomputation is deterministic. Reused routines contribute zero
/// visits to the returned [`StackStats`].
pub fn reanalyze_stack(
    program: &Program,
    cfg: &ProgramCfg,
    prev: StackAnalysis,
    dirty: &[bool],
) -> (StackAnalysis, StackStats) {
    let n = program.routines().len();
    if prev.routines.len() != n {
        return analyze_stack(program, cfg);
    }
    let cg = CallGraph::build(program, cfg);
    let sccs = cg.sccs();
    let prev_summaries: Vec<StackSummary> =
        prev.routines.iter().map(|r| r.summary.clone()).collect();
    let mut prev_slots: Vec<Option<RoutineStack>> = prev.routines.into_iter().map(Some).collect();
    let mut summaries = vec![StackSummary::default(); n];
    let mut routines: Vec<Option<RoutineStack>> = (0..n).map(|_| None).collect();
    let mut stats = StackStats::default();
    for component in sccs.bottom_up() {
        let comp = sccs.component_of(component[0]);
        let cyclic = is_cyclic(&cg, component);
        // Reuse is sound only when recomputing would read identical
        // inputs: clean members, equal summaries for every callee in a
        // lower component (intra-component callees are re-iterated
        // either way), and an unchanged cyclic flag (a condensation
        // change elsewhere can flip it without touching this routine's
        // text, and KILL extraction depends on it).
        let clean = component.iter().all(|&r| {
            !dirty[r.index()]
                && prev_slots[r.index()].as_ref().is_some_and(|p| p.cyclic == cyclic)
                && cg.callees(r).iter().all(|&c| {
                    sccs.component_of(c) == comp
                        || summaries[c.index()] == prev_summaries[c.index()]
                })
        });
        if clean {
            for &rid in component {
                let rs = prev_slots[rid.index()].take().expect("prev routine present");
                summaries[rid.index()] = rs.summary.clone();
                routines[rid.index()] = Some(rs);
            }
        } else {
            solve_component(
                program,
                cfg,
                component,
                cyclic,
                &mut summaries,
                &mut routines,
                &mut stats,
            );
        }
    }
    let routines: Vec<RoutineStack> =
        routines.into_iter().map(|o| o.expect("every routine solved")).collect();
    (StackAnalysis { routines }, stats)
}

// ---------------------------------------------------------------------
// Consumer API.
// ---------------------------------------------------------------------

impl StackAnalysis {
    /// The per-routine facts.
    pub fn routine(&self, rid: RoutineId) -> &RoutineStack {
        &self.routines[rid.index()]
    }

    /// All per-routine facts, indexed by routine.
    pub fn all(&self) -> &[RoutineStack] {
        &self.routines
    }

    /// Total slots modelled across all frames.
    pub fn slot_count(&self) -> usize {
        self.routines.iter().map(|r| r.frame.slots.len()).sum()
    }

    /// Routines whose frame escaped the model.
    pub fn escaped_count(&self) -> usize {
        self.routines.iter().filter(|r| r.frame.escaped).count()
    }

    /// Every SP-relative access of `rid` with its converged dataflow
    /// facts, in address order. Empty for escaped routines (no access
    /// can be judged) and for blocks without a tracked displacement.
    pub fn accesses(
        &self,
        program: &Program,
        pcfg: &ProgramCfg,
        rid: RoutineId,
    ) -> Vec<StackAccess> {
        let rs = &self.routines[rid.index()];
        if rs.frame.escaped {
            return Vec::new();
        }
        let routine = program.routine(rid);
        let cfg = pcfg.routine_cfg(rid);
        let n = rs.frame.slots.len();
        let idx_of: BTreeMap<i64, usize> =
            rs.frame.slots.iter().enumerate().map(|(i, s)| (s.entry_off, i)).collect();
        let mut out: Vec<StackAccess> = Vec::new();
        for (bi, block) in cfg.blocks().iter().enumerate() {
            let Some(d0) = rs.sp_disp_in[bi] else { continue };

            // Forward replay: definedness before each access.
            enum Replay {
                Access(usize, usize),
                Wipe(i64, i64),
            }
            let mut replay: Vec<Replay> = Vec::new();
            let mut here: Vec<StackAccess> = Vec::new();
            let mut defined = rs.must_defined_in[bi].clone();
            let mut disp = d0;
            for addr in block.start()..block.end() {
                let insn = routine.insn_at(addr).expect("address in routine");
                if let Some((kind, width, d)) = sp_access(insn) {
                    let off = disp + d as i64;
                    let idx = idx_of[&off];
                    replay.push(Replay::Access(here.len(), idx));
                    here.push(StackAccess {
                        addr,
                        block: BlockId::from_index(bi),
                        kind,
                        width,
                        entry_off: off,
                        sp_disp: disp,
                        in_frame: off < 0 && off >= disp,
                        defined_before: defined.contains(idx),
                        live_after: true,
                    });
                    if kind == AccessKind::Store {
                        defined.insert(idx);
                    }
                } else if let SpEffect::Adjust(a) = sp_effect(insn) {
                    let d1 = disp + a;
                    let (lo, hi) = (disp.min(d1), disp.max(d1));
                    replay.push(Replay::Wipe(lo, hi));
                    for (_, &i) in idx_of.range(lo..hi) {
                        defined.remove(i);
                    }
                    disp = d1;
                }
            }

            // Backward replay: liveness after each store. The
            // terminator applies first (it executes last).
            let mut live = rs.live_out[bi].clone();
            if let TermKind::Call { target, .. } = block.term() {
                let cm = call_mask(target, disp, |i| &self.routines[i].summary, &idx_of, n);
                if cm.refs_full {
                    live = SlotSet::full(n);
                } else {
                    live.subtract(&cm.kills);
                    live.union_with(&cm.refs);
                }
            }
            for step in replay.iter().rev() {
                match *step {
                    Replay::Access(ai, idx) => match here[ai].kind {
                        AccessKind::Store => {
                            here[ai].live_after = live.contains(idx);
                            live.remove(idx);
                        }
                        AccessKind::Load => live.insert(idx),
                    },
                    Replay::Wipe(lo, hi) => {
                        for (_, &i) in idx_of.range(lo..hi) {
                            live.remove(i);
                        }
                    }
                }
            }
            out.extend(here);
        }
        out
    }

    /// The slots `b` certainly defines at its exit regardless of entry
    /// state (the forward *gen* mask) — a block "protects" a slot from
    /// an uninit read iff its bit is set. Used by the lint witness
    /// search; empty when the routine is escaped or the block has no
    /// tracked displacement.
    pub fn block_gen(
        &self,
        program: &Program,
        pcfg: &ProgramCfg,
        rid: RoutineId,
        b: BlockId,
    ) -> SlotSet {
        let rs = &self.routines[rid.index()];
        let n = rs.frame.slots.len();
        if rs.frame.escaped {
            return SlotSet::empty(n);
        }
        let idx_of: BTreeMap<i64, usize> =
            rs.frame.slots.iter().enumerate().map(|(i, s)| (s.entry_off, i)).collect();
        let cfg = pcfg.routine_cfg(rid);
        // Borrow the summaries as a slice for the shared mask builder.
        let summaries: Vec<StackSummary> =
            self.routines.iter().map(|r| r.summary.clone()).collect();
        let m = build_masks(
            program.routine(rid),
            cfg.block(b),
            rs.sp_disp_in[b.index()],
            &idx_of,
            n,
            &summaries,
        );
        m.gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::AluOp;
    use spike_program::ProgramBuilder;

    fn analyze(b: &ProgramBuilder) -> (Program, ProgramCfg, StackAnalysis, StackStats) {
        let program = b.build().expect("valid program");
        let cfg = ProgramCfg::build(&program);
        let (stack, stats) = analyze_stack(&program, &cfg);
        (program, cfg, stack, stats)
    }

    fn rid(program: &Program, name: &str) -> RoutineId {
        program.routine_by_name(name).expect("routine exists")
    }

    #[test]
    fn slotset_tail_masking_and_ops() {
        let full = SlotSet::full(70);
        assert_eq!(full.count(), 70);
        assert!(full.contains(69));
        let mut s = SlotSet::empty(70);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(69);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 69]);
        let mut t = SlotSet::empty(70);
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s), "second union is a no-op");
        t.remove(0);
        t.intersect_with(&s);
        assert_eq!(t.count(), 1);
        let mut u = SlotSet::full(70);
        u.subtract(&s);
        assert_eq!(u.count(), 68);
    }

    #[test]
    fn frame_discovery_and_dead_store() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::T0, Reg::SP, 0) // entry_off -16: never read → dead
            .store(Reg::T0, Reg::SP, 8) // entry_off -8: read below → live
            .load(Reg::T1, Reg::SP, 8)
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let (program, cfg, stack, _) = analyze(&b);
        let main = rid(&program, "main");
        let rs = stack.routine(main);
        assert!(!rs.frame.escaped);
        assert_eq!(rs.frame.frame_size, 16);
        assert_eq!(
            rs.frame.slots,
            vec![
                Slot { entry_off: -16, width: MemWidth::Q },
                Slot { entry_off: -8, width: MemWidth::Q }
            ]
        );
        let acc = stack.accesses(&program, &cfg, main);
        assert_eq!(acc.len(), 3);
        assert!(acc.iter().all(|a| a.in_frame));
        let dead = &acc[0];
        assert_eq!((dead.kind, dead.entry_off), (AccessKind::Store, -16));
        assert!(!dead.live_after, "never-read store is dead");
        assert!(!dead.defined_before);
        let live = &acc[1];
        assert_eq!((live.kind, live.entry_off), (AccessKind::Store, -8));
        assert!(live.live_after);
        let load = &acc[2];
        assert_eq!(load.kind, AccessKind::Load);
        assert!(load.defined_before, "store at -8 dominates the load");
    }

    #[test]
    fn store_dies_when_frame_is_popped() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::T0, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16) // wipes the slot before any read
            .halt();
        let (program, cfg, stack, _) = analyze(&b);
        let main = rid(&program, "main");
        let acc = stack.accesses(&program, &cfg, main);
        assert_eq!(acc.len(), 1);
        assert!(!acc[0].live_after);
    }

    #[test]
    fn uninit_and_out_of_frame_reads_are_visible() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::SP, Reg::SP, -16)
            .load(Reg::T0, Reg::SP, 8) // in frame, never stored
            .load(Reg::T1, Reg::SP, 24) // entry_off +8: out of frame
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let (program, cfg, stack, _) = analyze(&b);
        let main = rid(&program, "main");
        let acc = stack.accesses(&program, &cfg, main);
        assert_eq!(acc.len(), 2);
        assert!(acc[0].in_frame && !acc[0].defined_before);
        assert!(!acc[1].in_frame);
        assert_eq!(acc[1].entry_off, 8);
    }

    #[test]
    fn sp_leak_escapes_the_frame() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .lda(Reg::SP, Reg::SP, -16)
            .lda(Reg::T1, Reg::SP, 8) // derived pointer
            .store(Reg::T0, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let (program, cfg, stack, _) = analyze(&b);
        let main = rid(&program, "main");
        let rs = stack.routine(main);
        assert!(rs.frame.escaped);
        assert!(rs.summary.opaque);
        assert!(!rs.summary.unbalanced, "SP arithmetic itself is still tracked");
        assert!(stack.accesses(&program, &cfg, main).is_empty());
    }

    #[test]
    fn width_conflict_escapes_the_frame() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::T0, Reg::SP, 0)
            .insn(Instruction::Load { width: MemWidth::L, rd: Reg::T1, base: Reg::SP, disp: 0 })
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let (program, _, stack, _) = analyze(&b);
        assert!(stack.routine(rid(&program, "main")).frame.escaped);
    }

    #[test]
    fn unbalanced_callee_is_viral() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("leaky").halt();
        b.routine("leaky").lda(Reg::SP, Reg::SP, -8).ret();
        let (program, _, stack, _) = analyze(&b);
        let leaky = stack.routine(rid(&program, "leaky"));
        assert!(leaky.summary.unbalanced);
        assert!(leaky.summary.opaque);
        let main = stack.routine(rid(&program, "main"));
        assert!(main.frame.escaped, "caller of an unbalanced routine loses SP tracking");
        // The caller's own SP movement is untracked, not provably
        // unbalanced — virality stops at escape + opacity.
        assert!(!main.summary.unbalanced);
        assert!(main.summary.opaque);
    }

    #[test]
    fn callee_kill_defines_caller_slot_across_call() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::SP, Reg::SP, -16)
            .call("init") // writes our slot at entry_off -16 (its +0)
            .load(Reg::T1, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        b.routine("init").def(Reg::T0).store(Reg::T0, Reg::SP, 0).ret();
        let (program, cfg, stack, _) = analyze(&b);
        let init = stack.routine(rid(&program, "init"));
        assert_eq!(init.summary.mods_above, vec![0]);
        assert_eq!(init.summary.kills_above, vec![0]);
        assert!(init.summary.refs_above.is_empty());
        let main = rid(&program, "main");
        let acc = stack.accesses(&program, &cfg, main);
        let load = acc.iter().find(|a| a.kind == AccessKind::Load).expect("load present");
        assert!(load.defined_before, "callee KILL must flow through the call");
        assert!(load.in_frame);
    }

    #[test]
    fn callee_ref_keeps_caller_store_live() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::T0, Reg::SP, 0) // only read by the callee
            .call("reader")
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        b.routine("reader").load(Reg::V0, Reg::SP, 0).ret();
        let (program, cfg, stack, _) = analyze(&b);
        let reader = stack.routine(rid(&program, "reader"));
        assert_eq!(reader.summary.refs_above, vec![0]);
        let main = rid(&program, "main");
        let acc = stack.accesses(&program, &cfg, main);
        let store = acc.iter().find(|a| a.kind == AccessKind::Store).expect("store present");
        assert!(store.live_after, "callee REF must keep the store live");
    }

    #[test]
    fn recursion_terminates_with_empty_kill() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).call("rec").halt();
        b.routine("rec")
            .def(Reg::T1)
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::T1, Reg::SP, 0)
            .cond(spike_isa::BranchCond::Eq, Reg::T1, "done")
            .call("rec")
            .label("done")
            .load(Reg::T2, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        let (program, cfg, stack, _) = analyze(&b);
        let rec = stack.routine(rid(&program, "rec"));
        assert!(rec.cyclic);
        assert!(rec.summary.kills_above.is_empty());
        assert!(!rec.frame.escaped);
        let acc = stack.accesses(&program, &cfg, rid(&program, "rec"));
        let load = acc.iter().find(|a| a.kind == AccessKind::Load).expect("load");
        assert!(load.defined_before, "store dominates the load on both paths");
    }

    #[test]
    fn unknown_call_makes_routine_opaque_and_loads_live() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .def(Reg::PV)
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::T0, Reg::SP, 0) // unknown callee may read it
            .jsr_unknown(Reg::PV)
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let (program, cfg, stack, _) = analyze(&b);
        let main = rid(&program, "main");
        assert!(stack.routine(main).summary.opaque);
        assert!(!stack.routine(main).frame.escaped, "unknown calls are assumed balanced");
        let acc = stack.accesses(&program, &cfg, main);
        let store = acc.iter().find(|a| a.kind == AccessKind::Store).expect("store");
        assert!(store.live_after);
    }

    #[test]
    fn sp_join_conflict_loses_tracking() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .cond(spike_isa::BranchCond::Eq, Reg::T0, "other")
            .lda(Reg::SP, Reg::SP, -16)
            .br("join")
            .label("other")
            .lda(Reg::SP, Reg::SP, -32)
            .br("join")
            .label("join")
            .store(Reg::T0, Reg::SP, 0)
            .halt();
        let (program, _, stack, _) = analyze(&b);
        let rs = stack.routine(rid(&program, "main"));
        assert!(rs.frame.escaped);
        // Untracked is not unbalanced: like an unknown callee, the
        // routine is assumed to obey the calling standard — it is merely
        // opaque, so its loss of tracking does not cascade to callers.
        assert!(!rs.summary.unbalanced);
        assert!(rs.summary.opaque);
    }

    #[test]
    fn block_gen_reports_protecting_blocks() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::T0, Reg::SP, 0)
            .load(Reg::T1, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let (program, cfg, stack, _) = analyze(&b);
        let main = rid(&program, "main");
        let rs = stack.routine(main);
        let idx = rs.frame.slot_at(-16).expect("slot modelled");
        let rcfg = cfg.routine_cfg(main);
        // The whole routine is one block here: the store's gen bit is
        // set despite the trailing pop... no — the pop wipes it.
        let g = stack.block_gen(&program, &cfg, main, rcfg.entries()[0]);
        assert!(!g.contains(idx), "the pop wipes the slot before block exit");
    }

    #[test]
    fn reanalyze_clean_is_identical_with_zero_visits() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).lda(Reg::SP, Reg::SP, -16).call("init").halt();
        b.routine("init").def(Reg::T1).store(Reg::T1, Reg::SP, 0).ret();
        let program = b.build().expect("valid");
        let cfg = ProgramCfg::build(&program);
        let (scratch, scratch_stats) = analyze_stack(&program, &cfg);
        let dirty = vec![false; program.routines().len()];
        let (re, re_stats) = reanalyze_stack(&program, &cfg, scratch.clone_exact(), &dirty);
        assert_eq!(re, scratch);
        assert_eq!(re_stats, StackStats::default());
        assert_ne!(scratch_stats, StackStats::default());
        assert_eq!(re.heap_bytes(), scratch.heap_bytes(), "capacity-exact reuse");
    }

    #[test]
    fn reanalyze_dirty_matches_scratch() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).lda(Reg::SP, Reg::SP, -16).call("init").halt();
        b.routine("init").def(Reg::T1).store(Reg::T1, Reg::SP, 0).ret();
        let program = b.build().expect("valid");
        let cfg = ProgramCfg::build(&program);
        let (scratch, _) = analyze_stack(&program, &cfg);
        let mut dirty = vec![false; program.routines().len()];
        dirty[rid(&program, "init").index()] = true;
        let (re, _) = reanalyze_stack(&program, &cfg, scratch.clone_exact(), &dirty);
        assert_eq!(re, scratch);
        assert_eq!(re.heap_bytes(), scratch.heap_bytes());
    }

    #[test]
    fn operate_on_sp_is_a_leak() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).op(AluOp::Add, Reg::SP, Reg::T0, Reg::T1).halt();
        let (program, _, stack, _) = analyze(&b);
        assert!(stack.routine(rid(&program, "main")).frame.escaped);
    }
}
