//! Scoped-thread helpers for the per-routine analysis front-end.
//!
//! The front-end stages (CFG structure, `DEF`/`UBD` initialization, PSG
//! node creation and Figure-6 edge labeling) are embarrassingly parallel
//! across routines: each routine's result depends only on the immutable
//! program and the read-only results of earlier pipeline stages. These
//! helpers fan that work out over [`std::thread::scope`] workers pulling
//! routine indices from a shared atomic counter, then merge the results
//! back **in index order**, so every caller observes exactly the serial
//! result regardless of worker count or scheduling.
//!
//! No external thread-pool dependency is used; workers live only for the
//! duration of one stage.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a user-facing thread-count option: `0` means one worker per
/// available hardware thread, any other value is used as given.
pub fn resolve_threads(threads: usize) -> usize {
    match threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Maps `f` over `0..count` with up to `workers` scoped threads and
/// returns the results in index order.
///
/// With one worker (or at most one item) no threads are spawned and `f`
/// runs inline, in order — the serial fast path.
pub fn par_map<T, F>(count: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(count, workers, || (), |(), i| f(i))
}

/// [`par_map`] with per-worker mutable state: each worker calls `init`
/// once and threads the state through every item it processes. Used to
/// reuse an expensive scratch allocation (e.g. the Figure-6 flow solver's
/// workspace) across the items of one worker.
///
/// The serial fast path creates a single state and reuses it for all
/// items, matching what a hand-written loop would do.
pub fn par_map_with<S, T, I, F>(count: usize, workers: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    if workers == 1 {
        let mut state = init();
        return (0..count).map(|i| f(&mut state, i)).collect();
    }

    // Work-stealing by atomic counter: threads grab the next unclaimed
    // index, so an unlucky worker stuck on one huge routine cannot strand
    // a pre-assigned chunk behind it.
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        done.push((i, f(&mut state, i)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("analysis worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every index was claimed by exactly one worker")).collect()
}

/// [`par_map_with`] with *caller-owned* worker state: each thread takes
/// one element of `pool` as its scratch, so the allocations inside
/// survive the call and are reused by the next one. The wave scheduler
/// threads its component-solver pool (worklists, dedup buffers) through
/// every wave this way instead of reallocating them per wave.
///
/// Spawns one thread per pool element (capped at `count`); with a
/// single-element pool (or at most one item) `f` runs inline on
/// `pool[0]`, the serial fast path.
pub(crate) fn par_map_with_pool<S, T, F>(pool: &mut [S], count: usize, f: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(&mut S, usize) -> T + Sync,
{
    assert!(!pool.is_empty(), "worker pool must hold at least one state");
    let workers = pool.len().min(count.max(1));
    if workers == 1 {
        let state = &mut pool[0];
        return (0..count).map(|i| f(state, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pool[..workers]
            .iter_mut()
            .map(|state| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        done.push((i, f(state, i)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("analysis worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every index was claimed by exactly one worker")).collect()
}

/// Runs `f` on every item of `items` in place, splitting the slice into
/// one contiguous chunk per worker. Items must be mutually independent.
pub fn par_for_each_mut<T, F>(items: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for ch in items.chunks_mut(chunk) {
            scope.spawn(|| {
                for item in ch {
                    f(item);
                }
            });
        }
    });
}

/// A raw shared view of a mutable slice for the wave-parallel fixpoint
/// solver (`crate::schedule`).
///
/// Workers solving one wave write disjoint index sets — each call-graph
/// component touches only its own nodes' values and its own routines'
/// edge labels — so handing every worker the whole slice is sound as
/// long as that partition is respected. The type erases the exclusive
/// borrow into a raw pointer; the *caller* re-establishes the aliasing
/// discipline through the component partition.
///
/// Every accessor is `unsafe`: the caller must guarantee that no two
/// threads access the same index concurrently with at least one of them
/// writing. Bounds are always checked.
pub(crate) struct SharedMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: `SharedMut` is just a length-tagged pointer; sending or
// sharing it across threads is safe because every dereference is an
// unsafe operation whose aliasing contract the caller upholds.
unsafe impl<T: Send> Send for SharedMut<'_, T> {}
unsafe impl<T: Send> Sync for SharedMut<'_, T> {}

impl<'a, T> SharedMut<'a, T> {
    /// Wraps an exclusively borrowed slice.
    pub(crate) fn new(slice: &'a mut [T]) -> SharedMut<'a, T> {
        SharedMut { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: PhantomData }
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// No thread may be concurrently writing index `i`.
    pub(crate) unsafe fn get(&self, i: usize) -> &T {
        assert!(i < self.len, "SharedMut index {i} out of bounds ({})", self.len);
        &*self.ptr.add(i)
    }

    /// Mutably borrows element `i`.
    ///
    /// # Safety
    /// The caller must have exclusive access to index `i`: no other
    /// thread — and no other outstanding borrow on this thread — may
    /// touch it while the returned reference lives.
    #[allow(clippy::mut_from_ref)] // the partition discipline is the caller's contract
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut T {
        assert!(i < self.len, "SharedMut index {i} out of bounds ({})", self.len);
        &mut *self.ptr.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_uses_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn par_map_preserves_index_order() {
        for workers in [1, 2, 3, 8, 64] {
            let got = par_map(100, workers, |i| i * i);
            assert_eq!(got, (0..100).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        assert_eq!(par_map(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn par_map_with_reuses_worker_state() {
        // Each worker's scratch counts how many items it processed; the
        // counts must sum to the item count without affecting results.
        let processed = AtomicUsize::new(0);
        let got = par_map_with(
            50,
            4,
            || 0usize,
            |state, i| {
                *state += 1;
                processed.fetch_add(1, Ordering::Relaxed);
                i * 2
            },
        );
        assert_eq!(got, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(processed.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn par_map_with_pool_reuses_and_preserves_state() {
        // The pool's state survives the call: counts accumulate across
        // two invocations, and results stay in index order.
        let mut pool = vec![0usize; 4];
        let got = par_map_with_pool(&mut pool, 50, |state, i| {
            *state += 1;
            i * 2
        });
        assert_eq!(got, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(pool.iter().sum::<usize>(), 50);
        par_map_with_pool(&mut pool, 30, |state, _| *state += 1);
        assert_eq!(pool.iter().sum::<usize>(), 80);

        // Single-element pool takes the serial fast path.
        let mut one = vec![0usize];
        assert_eq!(par_map_with_pool(&mut one, 3, |_, i| i), vec![0, 1, 2]);
    }

    #[test]
    fn par_for_each_mut_touches_every_item_once() {
        for workers in [1, 2, 5, 16] {
            let mut v: Vec<usize> = (0..33).collect();
            par_for_each_mut(&mut v, workers, |x| *x += 1000);
            assert_eq!(v, (0..33).map(|i| i + 1000).collect::<Vec<_>>(), "workers={workers}");
        }
        let mut empty: Vec<usize> = Vec::new();
        par_for_each_mut(&mut empty, 4, |_| unreachable!("no items"));
    }

    #[test]
    fn results_are_identical_across_worker_counts() {
        // The determinism contract: same closure, any worker count, same
        // output vector (ordering and values).
        let serial = par_map(257, 1, |i| (i, i.wrapping_mul(0x9E3779B9)));
        for workers in [2, 4, 13] {
            assert_eq!(par_map(257, workers, |i| (i, i.wrapping_mul(0x9E3779B9))), serial);
        }
    }
}
