//! Property test: the assembly writer and parser are exact inverses over
//! arbitrary generated programs.

use proptest::prelude::*;
use spike_asm::{parse_asm, write_asm};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn executables_round_trip(seed in any::<u64>(), size in 1usize..8) {
        let program = spike_synth::generate_executable(seed, size);
        let text = write_asm(&program);
        let parsed = parse_asm(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(parsed, program);
    }

    #[test]
    fn profiles_round_trip(seed in any::<u64>(), which in 0usize..16) {
        let profiles = spike_synth::profiles();
        let p = &profiles[which];
        let program = spike_synth::generate(p, 15.0 / p.routines as f64, seed);
        let text = write_asm(&program);
        let parsed = parse_asm(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(parsed, program);
    }

    /// Writing is deterministic and stable under a write→parse→write
    /// cycle.
    #[test]
    fn writer_is_stable(seed in any::<u64>()) {
        let program = spike_synth::generate_executable(seed, 4);
        let text = write_asm(&program);
        let again = write_asm(&parse_asm(&text).expect("parses"));
        prop_assert_eq!(text, again);
    }
}
