//! The assembly parser: builds a [`Program`] from the crate's textual
//! format via [`spike_program::ProgramBuilder`].

use std::fmt;

use spike_isa::{AluOp, BranchCond, FpOp, Instruction, MemWidth, Reg, RegSet};
use spike_program::{Program, ProgramBuilder};

/// Error produced by [`parse_asm`], carrying the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number of the offending text (0 for whole-module
    /// errors such as build failures).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "asm error: {}", self.message)
        } else {
            write!(f, "asm error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError { line, message: message.into() }
}

/// Parses a module in the format produced by [`crate::write_asm`].
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line for syntax problems,
/// unknown mnemonics/registers, malformed operands, or (line 0) whole-
/// program assembly failures (undefined labels, fall-through ends, …).
pub fn parse_asm(text: &str) -> Result<Program, AsmError> {
    let mut builder = ProgramBuilder::new();
    let mut current: Option<String> = None;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix(".routine") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or_else(|| err(lineno, ".routine needs a name"))?;
            let export = match parts.next() {
                None => false,
                Some("export") => true,
                Some(other) => return Err(err(lineno, format!("unexpected `{other}`"))),
            };
            let r = builder.routine(name);
            if export {
                r.export();
            }
            current = Some(name.to_string());
            continue;
        }

        let name =
            current.clone().ok_or_else(|| err(lineno, "instruction outside of a .routine"))?;
        let r = builder.routine(&name);

        if let Some(rest) = line.strip_prefix(".entry") {
            r.alt_entry(rest.trim());
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            if label.contains(char::is_whitespace) {
                return Err(err(lineno, "label names cannot contain spaces"));
            }
            r.label(label);
            continue;
        }

        parse_instruction(r, line, lineno)?;
    }

    builder.build().map_err(|e| err(0, format!("assembly failed: {e}")))
}

/// Splits an operand list on top-level commas (commas inside `{}`/`[]`
/// group registers and cases, not operands).
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '{' | '[' | '(' => depth += 1,
            '}' | ']' | ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

/// Splits on whitespace outside of `{}`/`[]`/`()`.
fn split_ws_toplevel(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start: Option<usize> = None;
    for (i, c) in s.char_indices() {
        match c {
            '{' | '[' | '(' => depth += 1,
            '}' | ']' | ')' => depth = depth.saturating_sub(1),
            _ => {}
        }
        if c.is_whitespace() && depth == 0 {
            if let Some(st) = start.take() {
                out.push(&s[st..i]);
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(st) = start {
        out.push(&s[st..]);
    }
    out
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    Reg::all()
        .find(|r| r.to_string() == s)
        .ok_or_else(|| err(line, format!("unknown register `{s}`")))
}

/// Parses `(reg)`.
fn parse_paren_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    let inner = s
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| err(line, format!("expected (reg), got `{s}`")))?;
    parse_reg(inner.trim(), line)
}

/// Parses `disp(base)`.
fn parse_mem(s: &str, line: usize) -> Result<(i16, Reg), AsmError> {
    let open = s.find('(').ok_or_else(|| err(line, format!("expected disp(base), got `{s}`")))?;
    let disp: i16 =
        s[..open].trim().parse().map_err(|_| err(line, format!("bad displacement in `{s}`")))?;
    let base = parse_paren_reg(s[open..].trim(), line)?;
    Ok((disp, base))
}

/// Parses `{a0, v0}` (or `{}`).
fn parse_regset(s: &str, line: usize) -> Result<RegSet, AsmError> {
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| err(line, format!("expected {{regs}}, got `{s}`")))?;
    let mut set = RegSet::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        set.insert(parse_reg(part, line)?);
    }
    Ok(set)
}

/// Parses `key={regs}` where the operand begins with `key=`.
fn parse_keyed_set(s: &str, key: &str, line: usize) -> Result<RegSet, AsmError> {
    let rest = s
        .strip_prefix(key)
        .and_then(|s| s.strip_prefix('='))
        .ok_or_else(|| err(line, format!("expected {key}={{...}}, got `{s}`")))?;
    parse_regset(rest.trim(), line)
}

fn alu_op(mn: &str) -> Option<AluOp> {
    [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::CmpEq,
        AluOp::CmpLt,
        AluOp::CmpLe,
        AluOp::CmpUlt,
        AluOp::CmovEq,
        AluOp::CmovNe,
    ]
    .into_iter()
    .find(|op| op.mnemonic() == mn)
}

fn fp_op(mn: &str) -> Option<FpOp> {
    [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::CmpEq, FpOp::CmpLt]
        .into_iter()
        .find(|op| op.mnemonic() == mn)
}

fn branch_cond(mn: &str) -> Option<BranchCond> {
    [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Le,
        BranchCond::Ge,
        BranchCond::Gt,
        BranchCond::Lbc,
        BranchCond::Lbs,
    ]
    .into_iter()
    .find(|c| c.mnemonic() == mn)
}

fn parse_instruction(
    r: &mut spike_program::RoutineBuilder,
    line: &str,
    lineno: usize,
) -> Result<(), AsmError> {
    let (mn, rest) = match line.split_once(char::is_whitespace) {
        Some((m, rest)) => (m, rest.trim()),
        None => (line, ""),
    };
    let ops = split_operands(rest);
    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(lineno, format!("`{mn}` expects {n} operands, got {}", ops.len())))
        }
    };

    if let Some(op) = alu_op(mn) {
        want(3)?;
        let ra = parse_reg(ops[0], lineno)?;
        let rc = parse_reg(ops[2], lineno)?;
        if let Some(imm) = ops[1].strip_prefix('#') {
            let imm: u8 =
                imm.parse().map_err(|_| err(lineno, format!("bad immediate `{}`", ops[1])))?;
            r.insn(Instruction::OperateImm { op, ra, imm, rc });
        } else {
            let rb = parse_reg(ops[1], lineno)?;
            r.insn(Instruction::Operate { op, ra, rb, rc });
        }
        return Ok(());
    }
    if let Some(op) = fp_op(mn) {
        want(3)?;
        r.insn(Instruction::FpOperate {
            op,
            fa: parse_reg(ops[0], lineno)?,
            fb: parse_reg(ops[1], lineno)?,
            fc: parse_reg(ops[2], lineno)?,
        });
        return Ok(());
    }
    if let Some(cond) = branch_cond(mn) {
        want(2)?;
        r.cond(cond, parse_reg(ops[0], lineno)?, ops[1]);
        return Ok(());
    }

    match mn {
        "lda" => {
            want(2)?;
            let rd = parse_reg(ops[0], lineno)?;
            if let Some(target) = ops[1].strip_prefix("&&") {
                r.lda_routine(rd, target);
            } else if let Some(label) = ops[1].strip_prefix('&') {
                r.lda_label(rd, label);
            } else {
                let (disp, base) = parse_mem(ops[1], lineno)?;
                r.insn(Instruction::Lda { rd, base, disp });
            }
        }
        "ldah" => {
            want(2)?;
            let rd = parse_reg(ops[0], lineno)?;
            let (disp, base) = parse_mem(ops[1], lineno)?;
            r.insn(Instruction::Ldah { rd, base, disp });
        }
        "ldl" | "ldq" | "ldt" => {
            want(2)?;
            let width = match mn {
                "ldl" => MemWidth::L,
                "ldq" => MemWidth::Q,
                _ => MemWidth::T,
            };
            let rd = parse_reg(ops[0], lineno)?;
            let (disp, base) = parse_mem(ops[1], lineno)?;
            r.insn(Instruction::Load { width, rd, base, disp });
        }
        "stl" | "stq" | "stt" => {
            want(2)?;
            let width = match mn {
                "stl" => MemWidth::L,
                "stq" => MemWidth::Q,
                _ => MemWidth::T,
            };
            let rs = parse_reg(ops[0], lineno)?;
            let (disp, base) = parse_mem(ops[1], lineno)?;
            r.insn(Instruction::Store { width, rs, base, disp });
        }
        "br" => {
            want(1)?;
            r.br(ops[0]);
        }
        "bsr" => {
            want(1)?;
            r.call(ops[0]);
        }
        "jmp" => {
            let base = parse_paren_reg(ops.first().copied().unwrap_or(""), lineno)?;
            match ops.len() {
                1 => {
                    r.insn(Instruction::Jmp { base });
                }
                2 if ops[1].starts_with('[') => {
                    let inner = ops[1]
                        .strip_prefix('[')
                        .and_then(|s| s.strip_suffix(']'))
                        .ok_or_else(|| err(lineno, "malformed jump table"))?;
                    let cases: Vec<&str> =
                        inner.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
                    r.switch(base, &cases);
                }
                2 if ops[1].starts_with("live=") => {
                    let live = parse_keyed_set(ops[1], "live", lineno)?;
                    r.jmp_hinted(base, live);
                }
                _ => return Err(err(lineno, "malformed jmp operands")),
            }
        }
        "jsr" => {
            let base = parse_paren_reg(ops.first().copied().unwrap_or(""), lineno)?;
            match ops.len() {
                1 => {
                    r.jsr_unknown(base);
                }
                2 if ops[1].starts_with('{') => {
                    let inner = ops[1]
                        .strip_prefix('{')
                        .and_then(|s| s.strip_suffix('}'))
                        .ok_or_else(|| err(lineno, "malformed target set"))?;
                    let names: Vec<&str> =
                        inner.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
                    r.jsr_known(base, &names);
                }
                2 => {
                    // `used={..} defined={..} killed={..}` in one operand;
                    // sets may contain spaces, so split at brace depth 0.
                    let parts = split_ws_toplevel(ops[1]);
                    if parts.len() != 3 {
                        return Err(err(lineno, "hinted jsr needs used/defined/killed"));
                    }
                    let used = parse_keyed_set(parts[0], "used", lineno)?;
                    let defined = parse_keyed_set(parts[1], "defined", lineno)?;
                    let killed = parse_keyed_set(parts[2], "killed", lineno)?;
                    r.jsr_hinted(base, used, defined, killed);
                }
                _ => return Err(err(lineno, "malformed jsr operands")),
            }
        }
        "ret" => {
            want(1)?;
            r.insn(Instruction::Ret { base: parse_paren_reg(ops[0], lineno)? });
        }
        "halt" => {
            want(0)?;
            r.halt();
        }
        "putint" => {
            want(0)?;
            r.put_int();
        }
        other => return Err(err(lineno, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_module() {
        let p = parse_asm(".routine main\n    lda v0, 7(zero)\n    putint\n    halt\n").unwrap();
        assert_eq!(p.routines().len(), 1);
        assert_eq!(p.total_instructions(), 3);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p =
            parse_asm("; leading comment\n\n.routine main ; trailing\n    halt ; done\n").unwrap();
        assert_eq!(p.total_instructions(), 1);
    }

    #[test]
    fn reports_unknown_mnemonic_with_line() {
        let e = parse_asm(".routine main\n    frobnicate a0\n    halt\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn reports_unknown_register() {
        let e = parse_asm(".routine main\n    addq a0, q9, v0\n    halt\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("q9"));
    }

    #[test]
    fn reports_undefined_label_at_build() {
        let e = parse_asm(".routine main\n    br nowhere\n    halt\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn rejects_instructions_outside_routines() {
        let e = parse_asm("    halt\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn operand_count_is_checked() {
        let e = parse_asm(".routine main\n    addq a0, a1\n    halt\n").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));
    }

    #[test]
    fn split_operands_respects_nesting() {
        assert_eq!(split_operands("a0, {b, c}, [d, e]"), vec!["a0", "{b, c}", "[d, e]"]);
        assert_eq!(split_operands("(pv), {f, g}"), vec!["(pv)", "{f, g}"]);
        assert_eq!(split_operands(""), Vec::<&str>::new());
    }

    #[test]
    fn regset_round_trip() {
        let s = parse_regset("{v0, a0}", 1).unwrap();
        assert_eq!(s.to_string(), "{v0, a0}");
        assert_eq!(parse_regset("{}", 1).unwrap(), RegSet::EMPTY);
    }
}
