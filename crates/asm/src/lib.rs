//! # spike-asm
//!
//! A textual assembly format for the synthetic ISA, with a writer
//! ([`write_asm`]) and parser ([`parse_asm`]) that round-trip whole
//! programs exactly — including jump tables, indirect-call target lists,
//! §3.5 hints, alternate entrances, exports and address relocations.
//!
//! # Format
//!
//! ```text
//! ; comment
//! .routine main export        ; `export` marks unseen external callers
//!     lda a0, 21(zero)
//!     bsr double              ; direct call by routine name
//!     putint
//!     halt
//!
//! .routine double
//! top:                        ; labels name branch targets
//!     addq a0, a0, v0
//!     beq a0, top
//!     ret (ra)
//! ```
//!
//! Multiway jumps, indirect calls and address materializations carry
//! their auxiliary information inline:
//!
//! ```text
//!     jmp (t0), [case0, case1]            ; jump table
//!     jmp (t0)                            ; unknown target
//!     jmp (t0), live={v0, a0}             ; §3.5 live-register hint
//!     jsr (pv), {f, g}                    ; recovered target set
//!     jsr (pv)                            ; unknown target
//!     jsr (pv), used={a0} defined={v0} killed={v0, t0}
//!     lda t0, &case0                      ; address of a local label
//!     lda pv, &&double                    ; address of a routine entrance
//! .entry mid                              ; `mid:` is an alternate entrance
//! ```
//!
//! # Example
//!
//! ```
//! let text = "\
//! .routine main
//!     lda a0, 21(zero)
//!     bsr double
//!     putint
//!     halt
//! .routine double
//!     addq a0, a0, v0
//!     ret (ra)
//! ";
//! let program = spike_asm::parse_asm(text)?;
//! assert_eq!(program.routines().len(), 2);
//! // The writer emits an equivalent module.
//! let round = spike_asm::parse_asm(&spike_asm::write_asm(&program))?;
//! assert_eq!(round, program);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod parse;
mod write;

pub use parse::{parse_asm, AsmError};
pub use write::write_asm;

#[cfg(test)]
mod tests {
    use spike_isa::{Reg, RegSet};
    use spike_program::ProgramBuilder;

    use super::*;

    #[test]
    fn round_trips_a_feature_complete_program() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::A0)
            .label("top")
            .cond(spike_isa::BranchCond::Ne, Reg::A0, "top")
            .call("util")
            .call("util:alt")
            .lda_label(Reg::T0, "cases")
            .label("cases")
            .switch(Reg::T0, &["c0", "c1"])
            .label("c0")
            .br("end")
            .label("c1")
            .def(Reg::T1)
            .label("end")
            .lda_routine(Reg::PV, "util")
            .jsr_known(Reg::PV, &["util"])
            .jsr_unknown(Reg::PV)
            .jsr_hinted(
                Reg::PV,
                RegSet::of(&[Reg::A0]),
                RegSet::of(&[Reg::V0]),
                RegSet::of(&[Reg::V0, Reg::T0]),
            )
            .put_int()
            .halt();
        b.routine("util").export().def(Reg::T2).label("alt").alt_entry("alt").def(Reg::V0).ret();
        b.routine("spinner").jmp_hinted(Reg::T3, RegSet::of(&[Reg::V0])).halt();
        let program = b.build().unwrap();

        let text = write_asm(&program);
        let parsed = parse_asm(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(parsed, program, "round trip:\n{text}");
    }

    #[test]
    fn generated_profiles_round_trip() {
        for name in ["li", "perl", "vortex"] {
            let p = spike_synth::profile(name).unwrap();
            let program = spike_synth::generate(&p, 25.0 / p.routines as f64, 11);
            let text = write_asm(&program);
            let parsed = parse_asm(&text).unwrap_or_else(|e| panic!("{name} parse failed: {e}"));
            assert_eq!(parsed, program, "{name} round trip");
        }
    }

    #[test]
    fn generated_executables_round_trip() {
        for seed in 0..10 {
            let program = spike_synth::generate_executable(seed, 5);
            let parsed = parse_asm(&write_asm(&program)).expect("parses");
            assert_eq!(parsed, program, "seed {seed}");
        }
    }
}
