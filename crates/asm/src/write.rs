//! The assembly writer: renders a [`Program`] as text the parser can read
//! back exactly.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use spike_isa::{Instruction, MemWidth};
use spike_program::{IndirectTargets, Program, Routine};

/// Renders `program` in the crate's assembly format.
///
/// Every branch target, jump-table case, alternate entrance and
/// relocation target gets a local label `L<offset>`; direct calls and
/// routine-address materializations are written symbolically, so the text
/// is position-independent and [`crate::parse_asm`] reproduces the
/// program exactly.
pub fn write_asm(program: &Program) -> String {
    let mut out = String::new();
    for (_, r) in program.iter() {
        write_routine(&mut out, program, r);
    }
    out
}

/// The offsets within `r` that need a label: branch targets, jump-table
/// cases, alternate entrances, and in-routine relocation targets.
fn label_offsets(program: &Program, r: &Routine) -> BTreeSet<u32> {
    let mut labels = BTreeSet::new();
    for (i, insn) in r.insns().iter().enumerate() {
        let addr = r.addr() + i as u32;
        match *insn {
            Instruction::Br { disp } | Instruction::CondBranch { disp, .. } => {
                labels.insert(addr.wrapping_add(1).wrapping_add(disp as u32) - r.addr());
            }
            Instruction::Jmp { .. } => {
                if let Some(table) = program.jump_table(addr) {
                    for &t in table {
                        labels.insert(t - r.addr());
                    }
                }
            }
            _ => {}
        }
    }
    for &off in r.entry_offsets() {
        if off != 0 {
            labels.insert(off);
        }
    }
    for &target in program.relocations().values() {
        if r.contains_addr(target) && !r.entry_addrs().any(|a| a == target) {
            labels.insert(target - r.addr());
        }
    }
    labels
}

/// Symbolic name for an entrance address: `name` or `name:L<off>`.
fn entry_name(program: &Program, addr: u32) -> String {
    let (rid, _) = program.entry_at(addr).expect("address is an entrance");
    let r = program.routine(rid);
    if addr == r.addr() {
        r.name().to_string()
    } else {
        format!("{}:L{}", r.name(), addr - r.addr())
    }
}

fn write_routine(out: &mut String, program: &Program, r: &Routine) {
    let labels = label_offsets(program, r);
    let export = if r.exported() { " export" } else { "" };
    writeln!(out, ".routine {}{export}", r.name()).unwrap();
    for &off in r.entry_offsets() {
        if off != 0 {
            writeln!(out, ".entry L{off}").unwrap();
        }
    }

    for (i, insn) in r.insns().iter().enumerate() {
        let off = i as u32;
        let addr = r.addr() + off;
        if labels.contains(&off) {
            writeln!(out, "L{off}:").unwrap();
        }
        write!(out, "    ").unwrap();
        write_insn(out, program, r, addr, insn);
        writeln!(out).unwrap();
    }
    writeln!(out).unwrap();
}

fn write_insn(out: &mut String, program: &Program, r: &Routine, addr: u32, insn: &Instruction) {
    let local =
        |disp: i32| -> String { format!("L{}", (addr + 1).wrapping_add(disp as u32) - r.addr()) };
    match *insn {
        Instruction::Br { disp } => write!(out, "br {}", local(disp)).unwrap(),
        Instruction::CondBranch { cond, ra, disp } => {
            write!(out, "{} {ra}, {}", cond.mnemonic(), local(disp)).unwrap()
        }
        Instruction::Bsr { disp } => {
            let target = addr.wrapping_add(1).wrapping_add(disp as u32);
            write!(out, "bsr {}", entry_name(program, target)).unwrap()
        }
        Instruction::Jmp { base } => {
            write!(out, "jmp ({base})").unwrap();
            if let Some(table) = program.jump_table(addr) {
                let cases: Vec<String> =
                    table.iter().map(|&t| format!("L{}", t - r.addr())).collect();
                write!(out, ", [{}]", cases.join(", ")).unwrap();
            } else if let Some(hint) = program.jump_hint(addr) {
                write!(out, ", live={hint}").unwrap();
            }
        }
        Instruction::Jsr { base } => {
            write!(out, "jsr ({base})").unwrap();
            match program.indirect_call_targets(addr) {
                IndirectTargets::Unknown => {}
                IndirectTargets::Known(list) => {
                    let names: Vec<String> = list.iter().map(|&a| entry_name(program, a)).collect();
                    write!(out, ", {{{}}}", names.join(", ")).unwrap();
                }
                IndirectTargets::Hinted { used, defined, killed } => {
                    write!(out, ", used={used} defined={defined} killed={killed}").unwrap();
                }
            }
        }
        Instruction::Lda { rd, base, disp } => {
            if let Some(&target) = program.relocations().get(&addr) {
                if r.contains_addr(target) && !r.entry_addrs().any(|a| a == target) {
                    write!(out, "lda {rd}, &L{}", target - r.addr()).unwrap();
                } else {
                    write!(out, "lda {rd}, &&{}", entry_name(program, target)).unwrap();
                }
            } else {
                write!(out, "lda {rd}, {disp}({base})").unwrap();
            }
        }
        Instruction::Ldah { rd, base, disp } => write!(out, "ldah {rd}, {disp}({base})").unwrap(),
        Instruction::Load { width, rd, base, disp } => {
            write!(out, "{} {rd}, {disp}({base})", load_mnemonic(width)).unwrap()
        }
        Instruction::Store { width, rs, base, disp } => {
            write!(out, "{} {rs}, {disp}({base})", store_mnemonic(width)).unwrap()
        }
        Instruction::Operate { op, ra, rb, rc } => {
            write!(out, "{} {ra}, {rb}, {rc}", op.mnemonic()).unwrap()
        }
        Instruction::OperateImm { op, ra, imm, rc } => {
            write!(out, "{} {ra}, #{imm}, {rc}", op.mnemonic()).unwrap()
        }
        Instruction::FpOperate { op, fa, fb, fc } => {
            write!(out, "{} {fa}, {fb}, {fc}", op.mnemonic()).unwrap()
        }
        Instruction::Ret { base } => write!(out, "ret ({base})").unwrap(),
        Instruction::Halt => write!(out, "halt").unwrap(),
        Instruction::PutInt => write!(out, "putint").unwrap(),
    }
}

pub(crate) fn load_mnemonic(width: MemWidth) -> &'static str {
    match width {
        MemWidth::L => "ldl",
        MemWidth::Q => "ldq",
        MemWidth::T => "ldt",
    }
}

pub(crate) fn store_mnemonic(width: MemWidth) -> &'static str {
    match width {
        MemWidth::L => "stl",
        MemWidth::Q => "stq",
        MemWidth::T => "stt",
    }
}
